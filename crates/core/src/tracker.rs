//! The *observed* statistics path (§3.1).
//!
//! The paper's strategies are defined over statistics a peer can gather
//! locally during a period `T`: every query result is annotated with the
//! answering cluster's `cid`, so "each peer can keep track of its recall
//! with respect to all clusters in the system", and a peer also "keeps
//! track of the number of results it sends to queries coming from a
//! particular cluster" (the contribution measure). [`simulate_period`]
//! routes every peer's workload through the overlay and accumulates
//! exactly those observations; under flood routing the derived estimates
//! coincide with the oracle values computed from the [`RecallIndex`](crate::recall::RecallIndex)
//! (property-tested in `tests/`).
//!
//! # Examples
//!
//! A peer whose query is answered by another cluster observes exactly
//! that cluster in its cid annotations:
//!
//! ```
//! use recluster_core::{simulate_period, GameConfig, System};
//! use recluster_overlay::{ContentStore, Overlay, SimNetwork};
//! use recluster_types::{ClusterId, Document, PeerId, Query, Sym, Workload};
//!
//! let ov = Overlay::singletons(2);
//! let mut store = ContentStore::new(2);
//! store.add(PeerId(1), Document::new(vec![Sym(7)]));
//! let mut w = Workload::new();
//! w.add(Query::keyword(Sym(7)), 2);
//! let sys = System::new(ov, store, vec![w, Workload::new()], GameConfig::default());
//!
//! let mut net = SimNetwork::new();
//! let obs = simulate_period(&sys, &mut net);
//! let record = &obs.of(PeerId(0))[0];
//! assert_eq!(record.cluster_count(ClusterId(1)), 1);
//! assert_eq!(record.total, 1);
//! assert!(net.total_messages() > 0);
//! ```

use std::collections::BTreeMap;

use recluster_overlay::{
    route_to_clusters, AnnotatedResult, ContentStore, MsgKind, Overlay, RoutePlan, RoutingMode,
    SimNetwork, SummaryMode,
};
use recluster_types::{ClusterId, PeerId, Query, Workload};

use crate::recall::RecallIndex;

use crate::costcache::CostCache;
use crate::equilibrium::COST_EPS;
use crate::system::System;
use crate::view::SystemRead;

/// One peer's observations about one of its distinct queries.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryObservation {
    /// The query.
    pub query: Query,
    /// Relative frequency of the query in the peer's workload.
    pub weight: f64,
    /// Results received per answering cluster (cid annotations), sorted
    /// by cluster id with no duplicates — a compact sorted vector
    /// instead of a tree map, built from a reused dense buffer.
    pub per_cluster: Vec<(ClusterId, u64)>,
    /// Total results received across all clusters.
    pub total: u64,
    /// Results the peer itself holds for the query (known locally).
    pub own: u64,
}

impl QueryObservation {
    /// Results received from cluster `cid` (zero when none).
    pub fn cluster_count(&self, cid: ClusterId) -> u64 {
        self.per_cluster
            .binary_search_by_key(&cid, |&(c, _)| c)
            .map(|i| self.per_cluster[i].1)
            .unwrap_or(0)
    }
}

/// Observations accumulated by all peers over one period `T`.
#[derive(Debug, Clone, PartialEq)]
pub struct PeriodObservations {
    /// Per peer: one record per distinct query in its workload.
    observations: Vec<Vec<QueryObservation>>,
    /// Per peer: demand-weighted results served to each requesting
    /// cluster's members (contribution numerators). Sparse — a peer
    /// serves few distinct clusters, and a dense peers × `Cmax` matrix
    /// would be quadratic in system size.
    served: Vec<BTreeMap<ClusterId, f64>>,
    /// Per peer: total demand-weighted results served.
    served_total: Vec<f64>,
    /// Snapshot of cluster sizes (peers learn them from representatives).
    sizes: Vec<usize>,
    n_peers: usize,
}

/// What routed query evaluation did over one period: the forwards it
/// spent against what flooding would have spent, and (for lossy
/// summaries) the results it missed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoutingReport {
    /// The routing mode the period ran under.
    pub mode: RoutingMode,
    /// Query occurrences routed (workload counts, not distinct queries).
    pub query_events: u64,
    /// `QueryForward` messages charged (occurrence-weighted).
    pub forwards: u64,
    /// `QueryForward` messages flooding would have charged.
    pub flood_forwards: u64,
    /// Results returned to requesters (occurrence-weighted).
    pub returned_results: u64,
    /// Results flooding would have returned but routing missed —
    /// nonzero only under lossy summaries (occurrence-weighted).
    pub missed_results: u64,
}

impl RoutingReport {
    /// Fraction of flood results the routed run failed to return. Zero
    /// under flood and exact-summary routing (the no-false-negatives
    /// guarantee, property-tested in `tests/prop_routing.rs`).
    pub fn false_negative_rate(&self) -> f64 {
        let total = self.returned_results + self.missed_results;
        if total == 0 {
            0.0
        } else {
            self.missed_results as f64 / total as f64
        }
    }

    /// Forward messages per query occurrence.
    pub fn forwards_per_query(&self) -> f64 {
        if self.query_events == 0 {
            0.0
        } else {
            self.forwards as f64 / self.query_events as f64
        }
    }

    /// How many times fewer forwards than flooding (≥ 1.0; 1.0 under
    /// flood; infinite when routing spent nothing where flood would
    /// have spent something).
    pub fn forward_reduction(&self) -> f64 {
        if self.flood_forwards == 0 {
            1.0
        } else if self.forwards == 0 {
            f64::INFINITY
        } else {
            self.flood_forwards as f64 / self.forwards as f64
        }
    }
}

/// Occurrence-weighted distribution of per-query forward counts: how
/// many clusters each query occurrence was forwarded to. The tail of
/// this distribution (p99, max) is the per-query latency proxy the
/// traffic engine reports — a mean hides the conjunctive queries that
/// still fan out widely.
///
/// Counts are exact integers, so two runs of the same seeded scenario
/// produce identical histograms; quantiles are defined as the smallest
/// forward count covering the requested fraction of occurrences
/// (nearest-rank), which keeps them integers too.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ForwardHistogram {
    /// `counts[f]` = query occurrences forwarded to exactly `f` clusters.
    counts: Vec<u64>,
    /// Total occurrences recorded.
    total: u64,
}

impl ForwardHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `occurrences` query occurrences that were each forwarded
    /// to `forwards` clusters.
    pub fn record(&mut self, forwards: usize, occurrences: u64) {
        if occurrences == 0 {
            return;
        }
        if self.counts.len() <= forwards {
            self.counts.resize(forwards + 1, 0);
        }
        self.counts[forwards] += occurrences;
        self.total += occurrences;
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &ForwardHistogram) {
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (slot, &n) in other.counts.iter().enumerate() {
            self.counts[slot] += n;
        }
        self.total += other.total;
    }

    /// Total query occurrences recorded.
    pub fn total_occurrences(&self) -> u64 {
        self.total
    }

    /// Nearest-rank quantile: the smallest forward count `f` such that
    /// at least `⌈q · total⌉` occurrences were forwarded to `f` or fewer
    /// clusters. Zero for an empty histogram. `q` is clamped to `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let need = (q.clamp(0.0, 1.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (f, &n) in self.counts.iter().enumerate() {
            cum += n;
            if cum >= need {
                return f as u64;
            }
        }
        self.max()
    }

    /// Median forward count.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th-percentile forward count — the tail-latency proxy.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// The widest fan-out any occurrence paid.
    pub fn max(&self) -> u64 {
        self.counts
            .iter()
            .rposition(|&n| n > 0)
            .map_or(0, |f| f as u64)
    }

    /// Mean forwards per occurrence (0.0 when empty). A ratio of exact
    /// integer sums, so it is reproducible to the bit.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(f, &n)| f as u64 * n)
            .sum();
        weighted as f64 / self.total as f64
    }
}

/// Routes every live peer's workload through the overlay (flooding all
/// clusters, as the paper's evaluation does) and collects the per-peer
/// observations. Network traffic is charged per query *occurrence*.
pub fn simulate_period(system: &System, net: &mut SimNetwork) -> PeriodObservations {
    simulate_period_routed(system, net, RoutingMode::Flood).0
}

/// [`simulate_period`] under an explicit [`RoutingMode`].
///
/// Under [`RoutingMode::Flood`] every query visits every non-empty
/// cluster. Under [`RoutingMode::Routed`] a [`RoutePlan`] built from the
/// system's cluster summaries forwards each query only to clusters whose
/// summary matches; with exact summaries the observations (and therefore
/// every recall/contribution estimate derived from them) are
/// **bit-identical** to flooding while the `QueryForward` traffic
/// shrinks by the forward-reduction factor. With lossy summaries the
/// returned [`RoutingReport`] quantifies the missed results.
pub fn simulate_period_routed(
    system: &System,
    net: &mut SimNetwork,
    mode: RoutingMode,
) -> (PeriodObservations, RoutingReport) {
    let (obs, report, _) = simulate_period_routed_full(system, net, mode);
    (obs, report)
}

/// [`simulate_period_routed`], additionally returning the
/// occurrence-weighted [`ForwardHistogram`] of per-query forward counts
/// (one record per distinct live query, weighted by its total demand).
/// The observations and report are bit-identical to the plain variant —
/// the histogram only *observes* the forwards already charged.
pub fn simulate_period_routed_full(
    system: &System,
    net: &mut SimNetwork,
    mode: RoutingMode,
) -> (PeriodObservations, RoutingReport, ForwardHistogram) {
    let core = run_period_core(system, net, mode, true);
    let overlay = system.overlay();
    let index = system.index();
    let mut observations: Vec<Vec<QueryObservation>> = vec![Vec::new(); overlay.n_slots()];

    // Fan the shared evaluations out to every live holder, in the exact
    // (peer id, workload order) the per-requester walk produced.
    for requester in overlay.peers() {
        let workload = &system.workloads()[requester.index()];
        for (query, _count) in workload.iter() {
            let qid = index.qid(query).expect("workload queries are indexed") as usize;
            let eval = core.evals[qid]
                .as_ref()
                .expect("a live holder implies the query was evaluated");
            let own = system.store().result_count(query, requester);
            let weight = workload.frequency(query);
            observations[requester.index()].push(QueryObservation {
                query: query.clone(),
                weight,
                per_cluster: eval.per_cluster.clone(),
                total: eval.total,
                own,
            });
        }
    }

    (
        PeriodObservations {
            observations,
            served: core.served,
            served_total: core.served_total,
            sizes: overlay.sizes(),
            n_peers: overlay.n_peers(),
        },
        core.report,
        core.histogram,
    )
}

/// Traffic-only period: charges `net` and returns the [`RoutingReport`]
/// and [`ForwardHistogram`] **bit-identical** to
/// [`simulate_period_routed_full`] under the same state, while skipping
/// the per-peer observation fan-out and the served-credit accumulation
/// entirely. This is what the churn driver's query-traffic measurement
/// wants — at a million peers, materializing per-requester observation
/// records (one per distinct workload query per peer) dominates both
/// the allocation volume and the peak RSS of a period, and the oracle
/// repair path never reads them.
pub fn simulate_period_traffic(
    system: &System,
    net: &mut SimNetwork,
    mode: RoutingMode,
) -> (RoutingReport, ForwardHistogram) {
    let core = run_period_core(system, net, mode, false);
    (core.report, core.histogram)
}

/// One distinct query's shared evaluation — identical for every
/// holder (content is fixed within the period), fanned out to the
/// per-peer observations afterwards.
struct QueryEval {
    per_cluster: Vec<(ClusterId, u64)>,
    total: u64,
}

/// Everything one distinct query's evaluation produces before any
/// shared state is touched: the unscaled message ledger, the annotated
/// results, the demand buckets, and the raw (per-single-occurrence)
/// report counters. Packets are pure per-query values, so they can be
/// produced on any thread; folding them into the network/report/served
/// state happens in one sequential qid-order merge, which makes the
/// sharded walk byte-identical to the sequential one by construction.
struct QueryPacket {
    /// Total live demand (occurrences summed over live holders).
    total_demand: u64,
    /// Live demand bucketed by requesting cluster index, ascending.
    demand_buckets: Vec<(usize, u64)>,
    /// The single-evaluation message ledger (unscaled).
    ledger: SimNetwork,
    /// The cid-annotated results of the single evaluation.
    results: Vec<AnnotatedResult>,
    /// Per-answering-cluster result counts, ascending by cluster id.
    per_cluster: Vec<(ClusterId, u64)>,
    /// Total results of the single evaluation.
    total: u64,
    /// `QueryForward` messages of the single evaluation.
    forwards: u64,
    /// Results a lossy summary skipped (raw; demand-scaled at merge).
    missed: u64,
}

/// Reusable per-worker evaluation buffers: a scratch ledger, dense
/// per-cluster accumulators (result counts, live demand) plus their
/// touched-slot lists (reset in O(touched), not O(cmax)). The sharded
/// path builds one per range; the sequential path reuses one for the
/// whole period.
struct EvalBufs {
    scratch: SimNetwork,
    cluster_acc: Vec<u64>,
    touched: Vec<usize>,
    routed_targets: Vec<ClusterId>,
    demand_acc: Vec<u64>,
    demand_touched: Vec<usize>,
}

impl EvalBufs {
    fn new(cmax: usize) -> Self {
        EvalBufs {
            scratch: SimNetwork::new(),
            cluster_acc: vec![0; cmax],
            touched: Vec::new(),
            routed_targets: Vec::new(),
            demand_acc: vec![0; cmax],
            demand_touched: Vec::new(),
        }
    }
}

/// Evaluates one distinct query against period-constant state. Pure in
/// `qid` given the shared read-only captures — the sharding contract of
/// [`crate::shard::map_ranges`]. Returns `None` when the query has no
/// live demand (the period never routes it). Buffers in `bufs` are
/// returned to their all-zeros/empty state before returning, so a fresh
/// `EvalBufs` and a reused one are indistinguishable.
#[allow(clippy::too_many_arguments)]
fn eval_query(
    qid: usize,
    overlay: &Overlay,
    store: &ContentStore,
    workloads: &[Workload],
    index: &RecallIndex,
    cache: &CostCache,
    non_empty: &[ClusterId],
    plan: Option<&RoutePlan>,
    lossy: bool,
    bufs: &mut EvalBufs,
) -> Option<QueryPacket> {
    let query = &index.queries()[qid];
    // Live demand for this query, bucketed by requesting cluster.
    // Workload entries always carry ≥ 1 occurrence, so "has a live
    // holder" and "has live demand" coincide; holder order does not
    // matter — the buckets are exact integer sums.
    let mut total_demand: u64 = 0;
    for &slot in cache.holders_of(qid) {
        let holder = PeerId::from_index(slot as usize);
        let Some(rcid) = overlay.cluster_of(holder) else {
            continue; // departed peers issue no queries
        };
        let count = workloads[slot as usize].count(query);
        total_demand += count;
        if bufs.demand_acc[rcid.index()] == 0 {
            bufs.demand_touched.push(rcid.index());
        }
        bufs.demand_acc[rcid.index()] += count;
    }
    if total_demand == 0 {
        for &ci in &bufs.demand_touched {
            bufs.demand_acc[ci] = 0;
        }
        bufs.demand_touched.clear();
        return None;
    }
    bufs.demand_touched.sort_unstable();

    // Evaluate once; the caller charges the network for every
    // occurrence of every live holder (the ledger totals are linear, so
    // one `merge_scaled` by the demand sum equals the per-holder walk).
    bufs.scratch.reset();
    let targets: &[ClusterId] = match plan {
        None => non_empty,
        Some(plan) => {
            plan.route_into(query, &mut bufs.routed_targets);
            &bufs.routed_targets
        }
    };
    let results = route_to_clusters(overlay, store, query, targets, &mut bufs.scratch);
    let forwards = bufs.scratch.messages(MsgKind::QueryForward);
    let mut missed = 0u64;
    if lossy {
        // Accounting only (uncharged): what flooding would have found
        // in the clusters the lossy summary skipped.
        for &cid in non_empty {
            if targets.binary_search(&cid).is_ok() {
                continue;
            }
            for &peer in overlay.cluster(cid).members() {
                missed += store.result_count(query, peer);
            }
        }
    }

    let mut total = 0u64;
    for r in &results {
        let slot = r.cluster.index();
        if bufs.cluster_acc[slot] == 0 {
            bufs.touched.push(slot);
        }
        bufs.cluster_acc[slot] += r.count;
        total += r.count;
    }
    bufs.touched.sort_unstable();
    let per_cluster: Vec<(ClusterId, u64)> = bufs
        .touched
        .iter()
        .map(|&slot| (ClusterId::from_index(slot), bufs.cluster_acc[slot]))
        .collect();
    for &slot in &bufs.touched {
        bufs.cluster_acc[slot] = 0;
    }
    bufs.touched.clear();
    let demand_buckets: Vec<(usize, u64)> = bufs
        .demand_touched
        .iter()
        .map(|&ci| (ci, bufs.demand_acc[ci]))
        .collect();
    for &ci in &bufs.demand_touched {
        bufs.demand_acc[ci] = 0;
    }
    bufs.demand_touched.clear();

    Some(QueryPacket {
        total_demand,
        demand_buckets,
        ledger: std::mem::replace(&mut bufs.scratch, SimNetwork::new()),
        results,
        per_cluster,
        total,
        forwards,
        missed,
    })
}

/// The shared period walk behind both public variants: evaluate every
/// distinct query (sharded across the rayon shim when the system is
/// large), then fold the packets into the network, report, histogram
/// and — when `collect` — the served-credit state and per-query evals,
/// in one sequential qid-order merge.
struct PeriodCore {
    evals: Vec<Option<QueryEval>>,
    served: Vec<BTreeMap<ClusterId, f64>>,
    served_total: Vec<f64>,
    report: RoutingReport,
    histogram: ForwardHistogram,
}

fn run_period_core(
    system: &System,
    net: &mut SimNetwork,
    mode: RoutingMode,
    collect: bool,
) -> PeriodCore {
    let overlay = system.overlay();
    let index = system.index();
    let n_slots = overlay.n_slots();
    let cmax = overlay.cmax();
    let store = system.store();
    let workloads = system.workloads();
    // The flushed cost cache supplies the query → holder lists: the
    // period walks each *distinct* query once instead of once per
    // holder, which removes the O(peers × workload) evaluation factor —
    // at scale most peers share their queries with thousands of others.
    let cache_ref = system.cost_cache();
    let cache: &CostCache = &cache_ref;

    // The period-constant routing state: membership and content change
    // only *between* periods, so the non-empty cluster list and the
    // route plan are built once.
    let non_empty: Vec<ClusterId> = overlay.non_empty_ids().to_vec();
    let plan = match mode {
        RoutingMode::Flood => None,
        RoutingMode::Routed(precision) => Some(RoutePlan::build(system.summaries(), precision)),
    };
    let lossy = matches!(mode, RoutingMode::Routed(SummaryMode::TopK(_)));
    let n_queries = index.n_queries();

    // Each distinct query's evaluation reads only period-constant state,
    // so the walk shards into contiguous qid ranges with per-range
    // buffers. The threshold keys on the *slot* count, not the query
    // count: per-query work is dominated by the member walk of
    // `route_to_clusters`, which scales with membership, so a small
    // distinct-query set over a huge overlay is exactly the case worth
    // sharding.
    let packets: Vec<Option<QueryPacket>> = if crate::shard::should_shard(n_slots) {
        crate::shard::map_ranges(n_queries, |range| {
            let mut bufs = EvalBufs::new(cmax);
            range
                .map(|qid| {
                    eval_query(
                        qid,
                        overlay,
                        store,
                        workloads,
                        index,
                        cache,
                        &non_empty,
                        plan.as_ref(),
                        lossy,
                        &mut bufs,
                    )
                })
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect()
    } else {
        let mut bufs = EvalBufs::new(cmax);
        (0..n_queries)
            .map(|qid| {
                eval_query(
                    qid,
                    overlay,
                    store,
                    workloads,
                    index,
                    cache,
                    &non_empty,
                    plan.as_ref(),
                    lossy,
                    &mut bufs,
                )
            })
            .collect()
    };

    let mut report = RoutingReport {
        mode,
        query_events: 0,
        forwards: 0,
        flood_forwards: 0,
        returned_results: 0,
        missed_results: 0,
    };
    let mut histogram = ForwardHistogram::new();
    let mut evals: Vec<Option<QueryEval>> = Vec::with_capacity(if collect { n_queries } else { 0 });
    let mut served: Vec<BTreeMap<ClusterId, f64>> =
        vec![BTreeMap::new(); if collect { n_slots } else { 0 }];
    let mut served_total = vec![0.0; if collect { n_slots } else { 0 }];

    for (qid, packet) in packets.into_iter().enumerate() {
        let Some(p) = packet else {
            if collect {
                evals.push(None); // no live demand: the period never routes it
            }
            continue;
        };
        net.merge_scaled(&p.ledger, p.total_demand);
        report.query_events += p.total_demand;
        report.flood_forwards += non_empty.len() as u64 * p.total_demand;
        report.forwards += p.forwards * p.total_demand;
        histogram.record(p.forwards as usize, p.total_demand);
        report.missed_results += p.missed * p.total_demand;
        report.returned_results += p.total * p.total_demand;
        if !collect {
            continue;
        }
        let query = &index.queries()[qid];
        for r in &p.results {
            // The answering peer records whom it served (Eq. 6
            // numerator, weighted by query occurrences). Results a peer
            // finds in its own store are not "sent" and carry no
            // contribution credit, so the peer's own occurrences leave
            // its home-cluster bucket. Every credit is a product/sum of
            // integers well below 2⁵³, and the (result, bucket) fold
            // order matches the sequential walk exactly, so this
            // accumulation is bit-identical to crediting requester by
            // requester.
            for &(ci, bucket) in &p.demand_buckets {
                let mut demand = bucket;
                if overlay.cluster_of(r.peer) == Some(ClusterId::from_index(ci)) {
                    demand -= workloads[r.peer.index()].count(query);
                }
                if demand > 0 {
                    let credit = demand as f64 * r.count as f64;
                    *served[r.peer.index()]
                        .entry(ClusterId::from_index(ci))
                        .or_insert(0.0) += credit;
                    served_total[r.peer.index()] += credit;
                }
            }
        }
        evals.push(Some(QueryEval {
            per_cluster: p.per_cluster,
            total: p.total,
        }));
    }

    PeriodCore {
        evals,
        served,
        served_total,
        report,
        histogram,
    }
}

impl PeriodObservations {
    /// The raw query observations of a peer.
    pub fn of(&self, peer: PeerId) -> &[QueryObservation] {
        &self.observations[peer.index()]
    }

    /// The peer's estimate of `pcost(p, cid)` from its observations: the
    /// join-inclusive membership cost plus, per query, the fraction of
    /// observed results *not* obtainable from `cid` (counting the peer's
    /// own documents as in-cluster wherever it goes).
    ///
    /// Generic over [`SystemRead`] so it works against both `&System`
    /// and a phase-1 [`SystemView`](crate::view::SystemView) — only the
    /// game configuration is read from the system; everything else comes
    /// from the observations. Clusters created after the observation
    /// snapshot (a grown `Cmax`) are treated as empty.
    pub fn estimated_pcost<S: SystemRead + ?Sized>(
        &self,
        system: &S,
        peer: PeerId,
        cid: ClusterId,
        currently_in: Option<ClusterId>,
    ) -> f64 {
        let cfg = system.config();
        let in_cluster = currently_in == Some(cid);
        let size = self.sizes.get(cid.index()).copied().unwrap_or(0) + usize::from(!in_cluster);
        let membership = cfg.alpha * cfg.theta.membership(size, self.n_peers);
        let mut loss = 0.0;
        for obs in &self.observations[peer.index()] {
            if obs.total == 0 {
                continue;
            }
            let mut inside = obs.cluster_count(cid);
            if !in_cluster {
                inside += obs.own;
            }
            let frac = (inside as f64 / obs.total as f64).min(1.0);
            loss += obs.weight * (1.0 - frac);
        }
        membership + loss
    }

    /// The peer's observed `contribution(p, cid)` (Eq. 6).
    pub fn estimated_contribution(&self, peer: PeerId, cid: ClusterId) -> f64 {
        let total = self.served_total[peer.index()];
        if total == 0.0 {
            0.0
        } else {
            self.served[peer.index()].get(&cid).copied().unwrap_or(0.0) / total
        }
    }

    /// The cluster minimizing the estimated `pcost` for `peer` — the
    /// selfish selection rule (Eq. 5) evaluated on observations.
    ///
    /// Scans exactly the candidate set of the oracle
    /// [`best_response`](crate::equilibrium::best_response) — non-empty
    /// clusters in ascending id order, with the *first* empty slot
    /// interleaved at its id position when `allow_empty` — and applies
    /// the same [`COST_EPS`] stay-on-tie rule, so observed and oracle
    /// selection can only diverge when the cost *estimates* diverge,
    /// never on candidate enumeration or tie handling. Returns `None`
    /// only when there are no candidate clusters at all.
    pub fn selfish_choice<S: SystemRead + ?Sized>(
        &self,
        system: &S,
        peer: PeerId,
        currently_in: Option<ClusterId>,
        allow_empty: bool,
    ) -> Option<(ClusterId, f64)> {
        selfish_scan(system, currently_in, allow_empty, |cid| {
            self.estimated_pcost(system, peer, cid, currently_in)
        })
    }
}

/// The shared candidate walk behind observed selfish selection: mirrors
/// the oracle `best_response` enumeration (non-empty ids ascending, the
/// first empty slot interleaved at its id position when `allow_empty`)
/// and its `COST_EPS` stay-on-tie rule, over an arbitrary estimated-cost
/// function. The incumbent cluster seeds the scan so ties always resolve
/// toward staying, exactly as the oracle resolves them.
fn selfish_scan<S: SystemRead + ?Sized>(
    system: &S,
    currently_in: Option<ClusterId>,
    allow_empty: bool,
    cost_of: impl Fn(ClusterId) -> f64,
) -> Option<(ClusterId, f64)> {
    let mut best: Option<(ClusterId, f64)> = currently_in.map(|cur| (cur, cost_of(cur)));
    let consider = |cid: ClusterId, best: &mut Option<(ClusterId, f64)>| {
        if currently_in == Some(cid) {
            return; // already seeded as the incumbent
        }
        let cost = cost_of(cid);
        let better = match *best {
            None => true,
            Some((_, b)) => cost < b - COST_EPS,
        };
        if better {
            *best = Some((cid, cost));
        }
    };
    let mut pending_empty = if allow_empty {
        system.overlay().first_empty_cluster()
    } else {
        None
    };
    for &cid in system.overlay().non_empty_ids() {
        if let Some(empty) = pending_empty {
            if empty < cid {
                consider(empty, &mut best);
                pending_empty = None;
            }
        }
        consider(cid, &mut best);
    }
    if let Some(empty) = pending_empty {
        consider(empty, &mut best);
    }
    best
}

/// Multi-period accumulator over [`PeriodObservations`] with exponential
/// decay — the statistics state a long-lived peer actually maintains
/// (§3.1: observations are refreshed every period `T`).
///
/// Folding is an exponential moving average with retention
/// `decay ∈ [0, 1)`: after absorbing a period, every observed count is
/// `decay · previous + (1 − decay) · new`. With `decay = 0` the
/// accumulator holds *exactly* the latest period — its estimates and
/// selfish choice are bit-identical to querying that
/// [`PeriodObservations`] directly (the `prop_observed` keystone
/// equivalence; the replace is literal, not arithmetic, so no ulp can
/// creep in).
#[derive(Debug, Clone, PartialEq)]
pub struct ObservedStats {
    decay: f64,
    periods: usize,
    folded: Option<FoldedObservations>,
}

/// The decayed counterpart of [`PeriodObservations`]: identical layout
/// and iteration order, with `f64` counts so fractional decayed values
/// are representable. Integer counts below 2⁵³ convert exactly, so the
/// `decay = 0` snapshot loses nothing.
#[derive(Debug, Clone, PartialEq)]
struct FoldedObservations {
    observations: Vec<Vec<FoldedQuery>>,
    served: Vec<BTreeMap<ClusterId, f64>>,
    served_total: Vec<f64>,
    sizes: Vec<usize>,
    n_peers: usize,
}

/// One peer's decayed observation record for one distinct query.
#[derive(Debug, Clone, PartialEq)]
struct FoldedQuery {
    query: Query,
    /// Relative frequency in the peer's *current* workload (frequencies
    /// describe the present workload; only result counts are decayed).
    weight: f64,
    per_cluster: Vec<(ClusterId, f64)>,
    total: f64,
    own: f64,
}

impl FoldedQuery {
    fn cluster_count(&self, cid: ClusterId) -> f64 {
        self.per_cluster
            .binary_search_by_key(&cid, |&(c, _)| c)
            .map(|i| self.per_cluster[i].1)
            .unwrap_or(0.0)
    }
}

impl ObservedStats {
    /// Creates an empty accumulator with retention `decay`.
    ///
    /// # Panics
    /// Panics unless `decay ∈ [0, 1)`.
    pub fn new(decay: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&decay),
            "decay must be in [0, 1), got {decay}"
        );
        ObservedStats {
            decay,
            periods: 0,
            folded: None,
        }
    }

    /// The configured retention factor.
    pub fn decay(&self) -> f64 {
        self.decay
    }

    /// Number of periods folded in so far.
    pub fn periods_absorbed(&self) -> usize {
        self.periods
    }

    /// Whether at least one period has been absorbed (estimates are
    /// meaningless — and [`Self::selfish_choice`] returns `None` —
    /// before that).
    pub fn has_observations(&self) -> bool {
        self.folded.is_some()
    }

    /// Folds one period of observations into the accumulator.
    ///
    /// With `decay = 0` (or on the first period) the state becomes a
    /// literal snapshot of `period`. Otherwise every count is updated as
    /// `decay · old + (1 − decay) · new`, over the *current* workload's
    /// distinct queries: a query the peer no longer issues is dropped
    /// (its weight is zero anyway), a brand-new query starts from an
    /// implicit zero history, and a cluster that stopped answering keeps
    /// a decaying memory. Cluster sizes and `|P|` always snapshot the
    /// newest period — membership estimates track the present overlay.
    pub fn absorb(&mut self, period: &PeriodObservations) {
        self.periods += 1;
        if self.decay == 0.0 || self.folded.is_none() {
            self.folded = Some(FoldedObservations::snapshot(period));
            return;
        }
        let old = self.folded.as_ref().expect("checked above");
        let lambda = self.decay;
        let keep = 1.0 - lambda;
        let n = period.n_peers;
        let mut observations = Vec::with_capacity(n);
        for (slot, records) in period.observations.iter().enumerate() {
            let previous = old.observations.get(slot).map(Vec::as_slice).unwrap_or(&[]);
            let by_query: BTreeMap<&Query, &FoldedQuery> =
                previous.iter().map(|f| (&f.query, f)).collect();
            let mut folded = Vec::with_capacity(records.len());
            for obs in records {
                folded.push(match by_query.get(&obs.query) {
                    Some(prev) => fold_query(prev, obs, lambda, keep),
                    None => FoldedQuery {
                        query: obs.query.clone(),
                        weight: obs.weight,
                        per_cluster: obs
                            .per_cluster
                            .iter()
                            .map(|&(c, v)| (c, keep * v as f64))
                            .collect(),
                        total: keep * obs.total as f64,
                        own: keep * obs.own as f64,
                    },
                });
            }
            observations.push(folded);
        }
        let mut served = Vec::with_capacity(n);
        let mut served_total = Vec::with_capacity(n);
        for slot in 0..n {
            let mut map: BTreeMap<ClusterId, f64> = period.served[slot]
                .iter()
                .map(|(&c, &v)| (c, keep * v))
                .collect();
            if let Some(prev) = old.served.get(slot) {
                for (&c, &v) in prev {
                    *map.entry(c).or_insert(0.0) += lambda * v;
                }
            }
            served.push(map);
            let prev_total = old.served_total.get(slot).copied().unwrap_or(0.0);
            served_total.push(lambda * prev_total + keep * period.served_total[slot]);
        }
        self.folded = Some(FoldedObservations {
            observations,
            served,
            served_total,
            sizes: period.sizes.clone(),
            n_peers: period.n_peers,
        });
    }

    /// The decayed estimate of `pcost(p, cid)` — same arithmetic as
    /// [`PeriodObservations::estimated_pcost`], over decayed counts.
    ///
    /// # Panics
    /// Panics if no period has been absorbed.
    pub fn estimated_pcost<S: SystemRead + ?Sized>(
        &self,
        system: &S,
        peer: PeerId,
        cid: ClusterId,
        currently_in: Option<ClusterId>,
    ) -> f64 {
        let folded = self
            .folded
            .as_ref()
            .expect("estimated_pcost before any absorbed period");
        let cfg = system.config();
        let in_cluster = currently_in == Some(cid);
        let size = folded.sizes.get(cid.index()).copied().unwrap_or(0) + usize::from(!in_cluster);
        let membership = cfg.alpha * cfg.theta.membership(size, folded.n_peers);
        let mut loss = 0.0;
        for obs in &folded.observations[peer.index()] {
            if obs.total == 0.0 {
                continue;
            }
            let mut inside = obs.cluster_count(cid);
            if !in_cluster {
                inside += obs.own;
            }
            let frac = (inside / obs.total).min(1.0);
            loss += obs.weight * (1.0 - frac);
        }
        membership + loss
    }

    /// Whether `peer` has an observation slot — false before any period
    /// is absorbed or for a peer that joined after the last one. A peer
    /// without a slot has nothing to decide on.
    pub fn covers(&self, peer: PeerId) -> bool {
        self.folded
            .as_ref()
            .is_some_and(|f| peer.index() < f.observations.len())
    }

    /// Total decayed demand-weighted results `peer` served — the
    /// denominator of the observed contribution. Zero before any
    /// absorbed period.
    pub fn served_total(&self, peer: PeerId) -> f64 {
        self.folded
            .as_ref()
            .map_or(0.0, |f| f.served_total[peer.index()])
    }

    /// The decayed observed `contribution(p, cid)` (Eq. 6); zero before
    /// any period is absorbed or when the peer served nothing.
    pub fn estimated_contribution(&self, peer: PeerId, cid: ClusterId) -> f64 {
        let Some(folded) = self.folded.as_ref() else {
            return 0.0;
        };
        let total = folded.served_total[peer.index()];
        if total == 0.0 {
            0.0
        } else {
            folded.served[peer.index()]
                .get(&cid)
                .copied()
                .unwrap_or(0.0)
                / total
        }
    }

    /// The selfish selection rule over the decayed estimates — same
    /// candidate set and tie-break as the oracle `best_response` (see
    /// [`PeriodObservations::selfish_choice`]). `None` before any period
    /// is absorbed.
    pub fn selfish_choice<S: SystemRead + ?Sized>(
        &self,
        system: &S,
        peer: PeerId,
        currently_in: Option<ClusterId>,
        allow_empty: bool,
    ) -> Option<(ClusterId, f64)> {
        self.folded.as_ref()?;
        selfish_scan(system, currently_in, allow_empty, |cid| {
            self.estimated_pcost(system, peer, cid, currently_in)
        })
    }
}

impl FoldedObservations {
    /// A literal (lossless) copy of one period: `u64` counts convert to
    /// `f64` exactly for any realistic result volume (< 2⁵³).
    fn snapshot(period: &PeriodObservations) -> Self {
        FoldedObservations {
            observations: period
                .observations
                .iter()
                .map(|records| {
                    records
                        .iter()
                        .map(|obs| FoldedQuery {
                            query: obs.query.clone(),
                            weight: obs.weight,
                            per_cluster: obs
                                .per_cluster
                                .iter()
                                .map(|&(c, v)| (c, v as f64))
                                .collect(),
                            total: obs.total as f64,
                            own: obs.own as f64,
                        })
                        .collect()
                })
                .collect(),
            served: period.served.clone(),
            served_total: period.served_total.clone(),
            sizes: period.sizes.clone(),
            n_peers: period.n_peers,
        }
    }
}

/// EMA-folds one query's new observation into its decayed history:
/// every count becomes `lambda · old + keep · new` over the union of
/// answering clusters; the weight snaps to the current workload
/// frequency.
fn fold_query(prev: &FoldedQuery, obs: &QueryObservation, lambda: f64, keep: f64) -> FoldedQuery {
    let mut per_cluster: BTreeMap<ClusterId, f64> = prev
        .per_cluster
        .iter()
        .map(|&(c, v)| (c, lambda * v))
        .collect();
    for &(c, v) in &obs.per_cluster {
        *per_cluster.entry(c).or_insert(0.0) += keep * v as f64;
    }
    FoldedQuery {
        query: obs.query.clone(),
        weight: obs.weight,
        per_cluster: per_cluster.into_iter().collect(),
        total: lambda * prev.total + keep * obs.total as f64,
        own: lambda * prev.own + keep * obs.own as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recluster_overlay::{ContentStore, Overlay, Theta};
    use recluster_types::{Document, Sym, Workload};

    use crate::cost::pcost;
    use crate::system::GameConfig;

    /// 3 peers: p0 queries Sym(1) (held by p1 ×2, p2 ×1) and Sym(2)
    /// (held by itself). p1 ∈ c0 with p0; p2 alone in c2.
    fn fixture() -> System {
        let mut ov = Overlay::singletons(3);
        ov.move_peer(PeerId(1), ClusterId(0));
        let mut store = ContentStore::new(3);
        store.add(PeerId(0), Document::new(vec![Sym(2)]));
        store.add(PeerId(1), Document::new(vec![Sym(1)]));
        store.add(PeerId(1), Document::new(vec![Sym(1), Sym(3)]));
        store.add(PeerId(2), Document::new(vec![Sym(1)]));
        let mut w0 = Workload::new();
        w0.add(Query::keyword(Sym(1)), 2);
        w0.add(Query::keyword(Sym(2)), 1);
        System::new(
            ov,
            store,
            vec![w0, Workload::new(), Workload::new()],
            GameConfig {
                alpha: 1.0,
                theta: Theta::Linear,
            },
        )
    }

    #[test]
    fn observed_pcost_matches_oracle_under_flood() {
        let sys = fixture();
        let mut net = SimNetwork::new();
        let obs = simulate_period(&sys, &mut net);
        let current = sys.overlay().cluster_of(PeerId(0));
        for cid in sys.overlay().cluster_ids() {
            let est = obs.estimated_pcost(&sys, PeerId(0), cid, current);
            let oracle = pcost(&sys, PeerId(0), cid);
            assert!(
                (est - oracle).abs() < 1e-9,
                "cluster {cid}: est {est} vs oracle {oracle}"
            );
        }
    }

    #[test]
    fn observed_contribution_matches_oracle() {
        let sys = fixture();
        let mut net = SimNetwork::new();
        let obs = simulate_period(&sys, &mut net);
        let mut strategy = crate::strategy::AltruisticStrategy::new();
        use crate::strategy::RelocationStrategy;
        strategy.prepare(&sys);
        for peer in [PeerId(0), PeerId(1), PeerId(2)] {
            for cid in sys.overlay().cluster_ids() {
                let est = obs.estimated_contribution(peer, cid);
                let oracle = strategy.contribution(peer, cid);
                assert!(
                    (est - oracle).abs() < 1e-9,
                    "{peer}@{cid}: est {est} vs oracle {oracle}"
                );
            }
        }
    }

    #[test]
    fn selfish_choice_agrees_with_best_response() {
        let sys = fixture();
        let mut net = SimNetwork::new();
        let obs = simulate_period(&sys, &mut net);
        for peer in [PeerId(0), PeerId(1), PeerId(2)] {
            let current = sys.overlay().cluster_of(peer);
            for allow_empty in [true, false] {
                let (choice, cost) = obs
                    .selfish_choice(&sys, peer, current, allow_empty)
                    .unwrap();
                let br = crate::equilibrium::best_response(&sys, peer, allow_empty);
                assert_eq!(choice, br.cluster, "{peer} allow_empty={allow_empty}");
                let oracle = pcost(&sys, peer, br.cluster);
                assert!((cost - oracle).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn selfish_choice_scans_only_the_oracle_candidate_set() {
        // The fixture leaves c1 empty and Cmax = 3, so a full
        // `cluster_ids()` scan would evaluate c1 even with empty targets
        // forbidden. With the oracle candidate walk, `allow_empty=false`
        // must never return an empty cluster, and `allow_empty=true`
        // only ever considers the *first* empty slot.
        let sys = fixture();
        let mut net = SimNetwork::new();
        let obs = simulate_period(&sys, &mut net);
        let current = sys.overlay().cluster_of(PeerId(2));
        let (choice, _) = obs.selfish_choice(&sys, PeerId(2), current, false).unwrap();
        assert!(!sys.overlay().cluster(choice).is_empty());
        // Seeding at the incumbent means a tie always resolves to stay.
        let (stay, cost) = obs.selfish_choice(&sys, PeerId(2), current, true).unwrap();
        let cur_cost = obs.estimated_pcost(&sys, PeerId(2), current.unwrap(), current);
        if (cost - cur_cost).abs() <= COST_EPS {
            assert_eq!(Some(stay), current);
        }
    }

    #[test]
    fn observed_stats_zero_decay_is_bitwise_snapshot() {
        let sys = fixture();
        let mut stats = ObservedStats::new(0.0);
        assert!(!stats.has_observations());
        // Two absorbed periods with different overlays: the accumulator
        // must equal the *latest* period exactly, bit for bit.
        let mut net = SimNetwork::new();
        let stale = simulate_period(&sys, &mut net);
        stats.absorb(&stale);
        let mut sys2 = fixture();
        sys2.move_peer(PeerId(2), ClusterId(1));
        let fresh = simulate_period(&sys2, &mut net);
        stats.absorb(&fresh);
        assert_eq!(stats.periods_absorbed(), 2);
        for peer in [PeerId(0), PeerId(1), PeerId(2)] {
            let current = sys2.overlay().cluster_of(peer);
            for cid in sys2.overlay().cluster_ids() {
                let direct = fresh.estimated_pcost(&sys2, peer, cid, current);
                let folded = stats.estimated_pcost(&sys2, peer, cid, current);
                assert_eq!(direct.to_bits(), folded.to_bits(), "{peer}@{cid}");
                assert_eq!(
                    fresh.estimated_contribution(peer, cid).to_bits(),
                    stats.estimated_contribution(peer, cid).to_bits()
                );
            }
            for allow_empty in [true, false] {
                let direct = fresh.selfish_choice(&sys2, peer, current, allow_empty);
                let folded = stats.selfish_choice(&sys2, peer, current, allow_empty);
                match (direct, folded) {
                    (Some((dc, dcost)), Some((fc, fcost))) => {
                        assert_eq!(dc, fc);
                        assert_eq!(dcost.to_bits(), fcost.to_bits());
                    }
                    (d, f) => assert_eq!(d.is_some(), f.is_some()),
                }
            }
        }
    }

    #[test]
    fn observed_stats_decay_folds_counts_as_ema() {
        let sys = fixture();
        let mut net = SimNetwork::new();
        let period = simulate_period(&sys, &mut net);
        let mut stats = ObservedStats::new(0.5);
        stats.absorb(&period); // first period: literal snapshot
        stats.absorb(&period); // identical second period
                               // 0.5·v + 0.5·v = v: absorbing the same period twice is a no-op
                               // on every count, so the estimates match the direct ones.
        let current = sys.overlay().cluster_of(PeerId(0));
        for cid in sys.overlay().cluster_ids() {
            let direct = period.estimated_pcost(&sys, PeerId(0), cid, current);
            let folded = stats.estimated_pcost(&sys, PeerId(0), cid, current);
            assert!(
                (direct - folded).abs() < 1e-12,
                "{cid}: {direct} vs {folded}"
            );
        }
        // A genuinely changed period: p2's doc disappears from c2 by
        // moving p2 next to p0 — the decayed estimate for kw(1) sits
        // strictly between the two per-period observations.
        let mut sys2 = fixture();
        sys2.move_peer(PeerId(2), ClusterId(0));
        let shifted = simulate_period(&sys2, &mut net);
        stats.absorb(&shifted);
        let folded = &stats.folded.as_ref().unwrap().observations[0];
        let q1 = folded
            .iter()
            .find(|f| f.query == Query::keyword(Sym(1)))
            .unwrap();
        // Old: c2 answered 1 result; new: 0 (p2 moved to c0). EMA keeps
        // half of the decayed memory: 0.5·1 + 0.5·0 = 0.5.
        assert!((q1.cluster_count(ClusterId(2)) - 0.5).abs() < 1e-12);
        // c0 answered 2 before (p1) and 3 now (p1 + p2): 0.5·2 + 0.5·3.
        assert!((q1.cluster_count(ClusterId(0)) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn observed_stats_empty_accumulator_is_inert() {
        let sys = fixture();
        let stats = ObservedStats::new(0.3);
        let current = sys.overlay().cluster_of(PeerId(0));
        assert!(stats
            .selfish_choice(&sys, PeerId(0), current, true)
            .is_none());
        assert_eq!(stats.estimated_contribution(PeerId(0), ClusterId(0)), 0.0);
    }

    #[test]
    #[should_panic(expected = "decay must be in [0, 1)")]
    fn observed_stats_rejects_decay_of_one() {
        let _ = ObservedStats::new(1.0);
    }

    #[test]
    fn observations_record_cid_annotations() {
        let sys = fixture();
        let mut net = SimNetwork::new();
        let obs = simulate_period(&sys, &mut net);
        let q1 = obs
            .of(PeerId(0))
            .iter()
            .find(|o| o.query == Query::keyword(Sym(1)))
            .unwrap();
        // Sym(1): 2 results from c0 (p1), 1 from c2 (p2).
        assert_eq!(q1.cluster_count(ClusterId(0)), 2);
        assert_eq!(q1.cluster_count(ClusterId(2)), 1);
        assert_eq!(q1.cluster_count(ClusterId(1)), 0);
        assert_eq!(q1.total, 3);
        assert_eq!(q1.own, 0);
    }

    #[test]
    fn observation_counts_match_distinct_workload_queries() {
        let sys = fixture();
        let mut net = SimNetwork::new();
        let obs = simulate_period(&sys, &mut net);
        // One observation per *distinct* query in each peer's workload,
        // regardless of occurrence counts — the buffer-reuse refactor
        // must not drop, duplicate, or reorder records.
        for p in [PeerId(0), PeerId(1), PeerId(2)] {
            assert_eq!(obs.of(p).len(), sys.workloads()[p.index()].iter().count());
        }
        // p0's records carry sorted, duplicate-free cluster annotations.
        for record in obs.of(PeerId(0)) {
            assert!(record.per_cluster.windows(2).all(|w| w[0].0 < w[1].0));
            let sum: u64 = record.per_cluster.iter().map(|&(_, n)| n).sum();
            assert_eq!(sum, record.total);
        }
    }

    #[test]
    fn period_traffic_scales_with_occurrence_counts() {
        // p0 issues kw(1) twice: the ledger must charge both occurrences
        // (merge_scaled path), matching the old merge-per-occurrence
        // accounting.
        let sys = fixture();
        let mut net = SimNetwork::new();
        let _ = simulate_period(&sys, &mut net);
        let mut single = SimNetwork::new();
        let mut w = Workload::new();
        w.add(Query::keyword(Sym(1)), 1);
        w.add(Query::keyword(Sym(2)), 1);
        let mut sys1 = fixture();
        sys1.set_workload(PeerId(0), w);
        let _ = simulate_period(&sys1, &mut single);
        assert!(net.total_messages() > single.total_messages());
    }

    #[test]
    fn period_charges_query_traffic() {
        let sys = fixture();
        let mut net = SimNetwork::new();
        let _ = simulate_period(&sys, &mut net);
        assert!(net.total_messages() > 0);
    }

    #[test]
    fn routed_exact_equals_flood_bit_for_bit() {
        let sys = fixture();
        let mut flood_net = SimNetwork::new();
        let flood = simulate_period(&sys, &mut flood_net);
        let mut routed_net = SimNetwork::new();
        let (routed, report) = simulate_period_routed(
            &sys,
            &mut routed_net,
            RoutingMode::Routed(SummaryMode::Exact),
        );
        assert_eq!(flood, routed);
        assert_eq!(report.missed_results, 0);
        assert_eq!(report.false_negative_rate(), 0.0);
        // Identical results → identical return traffic; fewer forwards.
        use recluster_overlay::MsgKind;
        assert_eq!(
            flood_net.messages(MsgKind::ResultReturn),
            routed_net.messages(MsgKind::ResultReturn)
        );
        assert!(
            routed_net.messages(MsgKind::QueryForward) <= flood_net.messages(MsgKind::QueryForward)
        );
        assert!(report.forwards <= report.flood_forwards);
        assert!(report.forward_reduction() >= 1.0);
    }

    #[test]
    fn routed_forwards_skip_resultless_clusters() {
        // p0's kw(1) has results in c0 and c2 only; kw(2) only at p0
        // itself (c0). Flood forwards both queries to both non-empty
        // clusters every occurrence: (2+1)×2 = 6. Routed: kw(1)×2
        // occurrences × 2 clusters + kw(2)×1 × 1 cluster = 5... compute
        // from the report instead of re-deriving here.
        let sys = fixture();
        let mut net = SimNetwork::new();
        let (_, report) =
            simulate_period_routed(&sys, &mut net, RoutingMode::Routed(SummaryMode::Exact));
        // kw(1): clusters c0 (p1's docs) and c2 (p2's doc) hold Sym(1);
        // ×2 occurrences → 4. kw(2): only c0 (p0's own doc) → 1.
        assert_eq!(report.forwards, 5);
        // Flood: 2 non-empty clusters × 3 occurrences.
        assert_eq!(report.flood_forwards, 6);
        assert_eq!(report.query_events, 3);
    }

    #[test]
    fn lossy_summaries_report_missed_results() {
        // Keep only each cluster's single most frequent term: c0 retains
        // Sym(1) (2 docs) over Sym(2)/Sym(3) (1 each) — p0's kw(2) then
        // misses its own cluster's doc... kw(2) is answered by p0's own
        // store entry in c0; dropping it from the summary loses 1 result
        // per occurrence.
        let sys = fixture();
        let mut net = SimNetwork::new();
        let (obs, report) =
            simulate_period_routed(&sys, &mut net, RoutingMode::Routed(SummaryMode::TopK(1)));
        assert!(report.missed_results > 0, "TopK(1) must lose something");
        assert!(report.false_negative_rate() > 0.0);
        assert!(report.false_negative_rate() < 1.0);
        // Observed + missed = what flood returns.
        let mut flood_net = SimNetwork::new();
        let (_, flood_report) = simulate_period_routed(&sys, &mut flood_net, RoutingMode::Flood);
        assert_eq!(
            report.returned_results + report.missed_results,
            flood_report.returned_results
        );
        // Routed observations never contain results flood lacks.
        for p in [PeerId(0), PeerId(1), PeerId(2)] {
            let flood_obs = simulate_period(&sys, &mut SimNetwork::new());
            for (r, f) in obs.of(p).iter().zip(flood_obs.of(p)) {
                assert!(r.total <= f.total);
            }
        }
    }

    #[test]
    fn flood_report_is_self_consistent() {
        let sys = fixture();
        let mut net = SimNetwork::new();
        let (_, report) = simulate_period_routed(&sys, &mut net, RoutingMode::Flood);
        assert_eq!(report.mode, RoutingMode::Flood);
        assert_eq!(report.forwards, report.flood_forwards);
        assert_eq!(report.missed_results, 0);
        assert!((report.forward_reduction() - 1.0).abs() < 1e-12);
        assert!(report.forwards_per_query() > 0.0);
    }

    #[test]
    fn forward_reduction_handles_zero_forward_edges() {
        let zeroed = |forwards, flood_forwards| RoutingReport {
            mode: RoutingMode::Routed(SummaryMode::Exact),
            query_events: 1,
            forwards,
            flood_forwards,
            returned_results: 0,
            missed_results: 0,
        };
        // No forwards where flood would have spent 6: maximal reduction,
        // not "no reduction".
        assert_eq!(zeroed(0, 6).forward_reduction(), f64::INFINITY);
        // Nothing to route at all (empty workload): neutral 1.0.
        assert_eq!(zeroed(0, 0).forward_reduction(), 1.0);
    }

    #[test]
    fn idle_peers_have_no_observations() {
        let sys = fixture();
        let mut net = SimNetwork::new();
        let obs = simulate_period(&sys, &mut net);
        assert!(obs.of(PeerId(2)).is_empty());
        // …but p2 still *served* p0's queries.
        assert!(obs.estimated_contribution(PeerId(2), ClusterId(0)) > 0.0);
    }

    #[test]
    fn forward_histogram_quantiles_are_nearest_rank() {
        let mut h = ForwardHistogram::new();
        h.record(1, 90); // 90 occurrences fanned to 1 cluster
        h.record(3, 9); // 9 to 3 clusters
        h.record(10, 1); // one unlucky conjunction to 10
        assert_eq!(h.total_occurrences(), 100);
        assert_eq!(h.p50(), 1);
        assert_eq!(h.p99(), 3, "99 of 100 occurrences fan to ≤ 3");
        assert_eq!(h.quantile(1.0), 10);
        assert_eq!(h.max(), 10);
        let mean = h.mean();
        assert!((mean - 1.27).abs() < 1e-12, "mean={mean}");
    }

    #[test]
    fn forward_histogram_empty_and_merge() {
        let empty = ForwardHistogram::new();
        assert_eq!(empty.p50(), 0);
        assert_eq!(empty.p99(), 0);
        assert_eq!(empty.max(), 0);
        assert_eq!(empty.mean(), 0.0);

        let mut a = ForwardHistogram::new();
        a.record(2, 5);
        a.record(0, 0); // zero occurrences: ignored entirely
        let mut b = ForwardHistogram::new();
        b.record(4, 5);
        a.merge(&b);
        assert_eq!(a.total_occurrences(), 10);
        assert_eq!(a.p50(), 2);
        assert_eq!(a.max(), 4);
        assert_eq!(a.mean(), 3.0);
    }

    #[test]
    fn traffic_variant_matches_full_bit_for_bit() {
        // The traffic-only walk must charge the exact same ledger and
        // produce the exact same report/histogram as the full one — it
        // only skips the observation/served state nobody reads.
        let sys = fixture();
        for mode in [
            RoutingMode::Flood,
            RoutingMode::Routed(SummaryMode::Exact),
            RoutingMode::Routed(SummaryMode::TopK(1)),
        ] {
            let mut net_full = SimNetwork::new();
            let (_, rep_full, hist_full) = simulate_period_routed_full(&sys, &mut net_full, mode);
            let mut net_traffic = SimNetwork::new();
            let (rep_traffic, hist_traffic) = simulate_period_traffic(&sys, &mut net_traffic, mode);
            assert_eq!(rep_full, rep_traffic, "{mode:?}");
            assert_eq!(hist_full, hist_traffic, "{mode:?}");
            assert_eq!(net_full.total_messages(), net_traffic.total_messages());
            assert_eq!(net_full.total_bytes(), net_traffic.total_bytes());
        }
    }

    #[test]
    fn sharded_period_is_bit_identical_to_sequential() {
        // Force the threshold both ways on pinned pools: the sharded
        // qid fan-out must reproduce the sequential walk exactly —
        // observations, served credit, report, histogram, and ledger.
        let sys = fixture();
        let mode = RoutingMode::Routed(SummaryMode::TopK(1)); // exercises `missed` too
        crate::shard::set_shard_min_override(Some(usize::MAX));
        let mut net_seq = SimNetwork::new();
        let (obs_seq, rep_seq, hist_seq) = simulate_period_routed_full(&sys, &mut net_seq, mode);
        crate::shard::set_shard_min_override(Some(1));
        for threads in [1usize, 2, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let mut net_par = SimNetwork::new();
            let (obs_par, rep_par, hist_par) =
                pool.install(|| simulate_period_routed_full(&sys, &mut net_par, mode));
            assert_eq!(obs_seq, obs_par, "{threads} threads");
            assert_eq!(rep_seq, rep_par, "{threads} threads");
            assert_eq!(hist_seq, hist_par, "{threads} threads");
            assert_eq!(net_seq.total_messages(), net_par.total_messages());
            assert_eq!(net_seq.total_bytes(), net_par.total_bytes());
        }
        crate::shard::set_shard_min_override(None);
    }

    #[test]
    fn full_variant_matches_plain_and_reports_fanout() {
        let sys = fixture();
        let mode = RoutingMode::Routed(SummaryMode::Exact);
        let mut net_a = SimNetwork::new();
        let (obs_a, rep_a) = simulate_period_routed(&sys, &mut net_a, mode);
        let mut net_b = SimNetwork::new();
        let (obs_b, rep_b, hist) = simulate_period_routed_full(&sys, &mut net_b, mode);
        assert_eq!(obs_a, obs_b);
        assert_eq!(rep_a, rep_b);
        assert_eq!(net_a.total_messages(), net_b.total_messages());
        // The histogram observes exactly the forwards charged: its
        // occurrence total and mean must agree with the report.
        assert_eq!(hist.total_occurrences(), rep_b.query_events);
        assert!((hist.mean() - rep_b.forwards_per_query()).abs() < 1e-12);
    }
}
