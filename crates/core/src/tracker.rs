//! The *observed* statistics path (§3.1).
//!
//! The paper's strategies are defined over statistics a peer can gather
//! locally during a period `T`: every query result is annotated with the
//! answering cluster's `cid`, so "each peer can keep track of its recall
//! with respect to all clusters in the system", and a peer also "keeps
//! track of the number of results it sends to queries coming from a
//! particular cluster" (the contribution measure). [`simulate_period`]
//! routes every peer's workload through the overlay and accumulates
//! exactly those observations; under flood routing the derived estimates
//! coincide with the oracle values computed from the [`RecallIndex`](crate::recall::RecallIndex)
//! (property-tested in `tests/`).

use recluster_overlay::{flood_query, SimNetwork};
use recluster_types::{ClusterId, PeerId, Query};

use crate::system::System;

/// One peer's observations about one of its distinct queries.
#[derive(Debug, Clone)]
pub struct QueryObservation {
    /// The query.
    pub query: Query,
    /// Relative frequency of the query in the peer's workload.
    pub weight: f64,
    /// Results received per answering cluster (cid annotations), sorted
    /// by cluster id with no duplicates — a compact sorted vector
    /// instead of a tree map, built from a reused dense buffer.
    pub per_cluster: Vec<(ClusterId, u64)>,
    /// Total results received across all clusters.
    pub total: u64,
    /// Results the peer itself holds for the query (known locally).
    pub own: u64,
}

impl QueryObservation {
    /// Results received from cluster `cid` (zero when none).
    pub fn cluster_count(&self, cid: ClusterId) -> u64 {
        self.per_cluster
            .binary_search_by_key(&cid, |&(c, _)| c)
            .map(|i| self.per_cluster[i].1)
            .unwrap_or(0)
    }
}

/// Observations accumulated by all peers over one period `T`.
#[derive(Debug, Clone)]
pub struct PeriodObservations {
    /// Per peer: one record per distinct query in its workload.
    observations: Vec<Vec<QueryObservation>>,
    /// Per peer × cluster: demand-weighted results served to that
    /// cluster's members (contribution numerators).
    served: Vec<Vec<f64>>,
    /// Per peer: total demand-weighted results served.
    served_total: Vec<f64>,
    /// Snapshot of cluster sizes (peers learn them from representatives).
    sizes: Vec<usize>,
    n_peers: usize,
}

/// Routes every live peer's workload through the overlay (flooding all
/// clusters, as the paper's evaluation does) and collects the per-peer
/// observations. Network traffic is charged per query *occurrence*.
pub fn simulate_period(system: &System, net: &mut SimNetwork) -> PeriodObservations {
    let overlay = system.overlay();
    let n_slots = overlay.n_slots();
    let cmax = overlay.cmax();
    let mut observations: Vec<Vec<QueryObservation>> = vec![Vec::new(); n_slots];
    let mut served = vec![vec![0.0; cmax]; n_slots];
    let mut served_total = vec![0.0; n_slots];

    // Buffers reused across every query of the period: a scratch ledger
    // for the single flood evaluation, a dense per-cluster accumulator
    // plus its touched-slot list (reset in O(touched), not O(cmax)).
    let mut scratch = SimNetwork::new();
    let mut cluster_acc: Vec<u64> = vec![0; cmax];
    let mut touched: Vec<usize> = Vec::with_capacity(cmax);

    for requester in overlay.peers() {
        let rcid = overlay.cluster_of(requester).expect("live peer");
        let workload = &system.workloads()[requester.index()];
        for (query, count) in workload.iter() {
            // Evaluate once — the remaining occurrences see identical
            // results (content is fixed within the period) — but charge
            // the network for every occurrence.
            scratch.reset();
            let results = flood_query(overlay, system.store(), query, &mut scratch);
            net.merge_scaled(&scratch, count);

            let mut total = 0u64;
            for r in &results {
                let slot = r.cluster.index();
                if cluster_acc[slot] == 0 {
                    touched.push(slot);
                }
                cluster_acc[slot] += r.count;
                total += r.count;
                // The answering peer records whom it served (Eq. 6
                // numerator, weighted by query occurrences). Results a
                // peer finds in its own store are not "sent" and carry
                // no contribution credit — matching the oracle.
                if r.peer != requester {
                    let credit = count as f64 * r.count as f64;
                    served[r.peer.index()][rcid.index()] += credit;
                    served_total[r.peer.index()] += credit;
                }
            }
            touched.sort_unstable();
            let per_cluster: Vec<(ClusterId, u64)> = touched
                .iter()
                .map(|&slot| (ClusterId::from_index(slot), cluster_acc[slot]))
                .collect();
            for &slot in &touched {
                cluster_acc[slot] = 0;
            }
            touched.clear();

            let own = system.store().result_count(query, requester);
            let weight = workload.frequency(query);
            observations[requester.index()].push(QueryObservation {
                query: query.clone(),
                weight,
                per_cluster,
                total,
                own,
            });
        }
    }

    PeriodObservations {
        observations,
        served,
        served_total,
        sizes: overlay.sizes(),
        n_peers: overlay.n_peers(),
    }
}

impl PeriodObservations {
    /// The raw query observations of a peer.
    pub fn of(&self, peer: PeerId) -> &[QueryObservation] {
        &self.observations[peer.index()]
    }

    /// The peer's estimate of `pcost(p, cid)` from its observations: the
    /// join-inclusive membership cost plus, per query, the fraction of
    /// observed results *not* obtainable from `cid` (counting the peer's
    /// own documents as in-cluster wherever it goes).
    pub fn estimated_pcost(
        &self,
        system: &System,
        peer: PeerId,
        cid: ClusterId,
        currently_in: Option<ClusterId>,
    ) -> f64 {
        let cfg = system.config();
        let in_cluster = currently_in == Some(cid);
        let size = self.sizes[cid.index()] + usize::from(!in_cluster);
        let membership = cfg.alpha * cfg.theta.membership(size, self.n_peers);
        let mut loss = 0.0;
        for obs in &self.observations[peer.index()] {
            if obs.total == 0 {
                continue;
            }
            let mut inside = obs.cluster_count(cid);
            if !in_cluster {
                inside += obs.own;
            }
            let frac = (inside as f64 / obs.total as f64).min(1.0);
            loss += obs.weight * (1.0 - frac);
        }
        membership + loss
    }

    /// The peer's observed `contribution(p, cid)` (Eq. 6).
    pub fn estimated_contribution(&self, peer: PeerId, cid: ClusterId) -> f64 {
        let total = self.served_total[peer.index()];
        if total == 0.0 {
            0.0
        } else {
            self.served[peer.index()][cid.index()] / total
        }
    }

    /// The cluster minimizing the estimated `pcost` for `peer` — the
    /// selfish selection rule (Eq. 5) evaluated on observations.
    pub fn selfish_choice(
        &self,
        system: &System,
        peer: PeerId,
        currently_in: Option<ClusterId>,
    ) -> Option<(ClusterId, f64)> {
        let mut best: Option<(ClusterId, f64)> = None;
        for cid in system.overlay().cluster_ids() {
            let cost = self.estimated_pcost(system, peer, cid, currently_in);
            let better = match best {
                None => true,
                Some((bc, b)) => {
                    cost < b - 1e-12 || (currently_in == Some(cid) && cost <= b && bc != cid)
                }
            };
            if better {
                best = Some((cid, cost));
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recluster_overlay::{ContentStore, Overlay, Theta};
    use recluster_types::{Document, Sym, Workload};

    use crate::cost::pcost;
    use crate::system::GameConfig;

    /// 3 peers: p0 queries Sym(1) (held by p1 ×2, p2 ×1) and Sym(2)
    /// (held by itself). p1 ∈ c0 with p0; p2 alone in c2.
    fn fixture() -> System {
        let mut ov = Overlay::singletons(3);
        ov.move_peer(PeerId(1), ClusterId(0));
        let mut store = ContentStore::new(3);
        store.add(PeerId(0), Document::new(vec![Sym(2)]));
        store.add(PeerId(1), Document::new(vec![Sym(1)]));
        store.add(PeerId(1), Document::new(vec![Sym(1), Sym(3)]));
        store.add(PeerId(2), Document::new(vec![Sym(1)]));
        let mut w0 = Workload::new();
        w0.add(Query::keyword(Sym(1)), 2);
        w0.add(Query::keyword(Sym(2)), 1);
        System::new(
            ov,
            store,
            vec![w0, Workload::new(), Workload::new()],
            GameConfig {
                alpha: 1.0,
                theta: Theta::Linear,
            },
        )
    }

    #[test]
    fn observed_pcost_matches_oracle_under_flood() {
        let sys = fixture();
        let mut net = SimNetwork::new();
        let obs = simulate_period(&sys, &mut net);
        let current = sys.overlay().cluster_of(PeerId(0));
        for cid in sys.overlay().cluster_ids() {
            let est = obs.estimated_pcost(&sys, PeerId(0), cid, current);
            let oracle = pcost(&sys, PeerId(0), cid);
            assert!(
                (est - oracle).abs() < 1e-9,
                "cluster {cid}: est {est} vs oracle {oracle}"
            );
        }
    }

    #[test]
    fn observed_contribution_matches_oracle() {
        let sys = fixture();
        let mut net = SimNetwork::new();
        let obs = simulate_period(&sys, &mut net);
        let mut strategy = crate::strategy::AltruisticStrategy::new();
        use crate::strategy::RelocationStrategy;
        strategy.prepare(&sys);
        for peer in [PeerId(0), PeerId(1), PeerId(2)] {
            for cid in sys.overlay().cluster_ids() {
                let est = obs.estimated_contribution(peer, cid);
                let oracle = strategy.contribution(peer, cid);
                assert!(
                    (est - oracle).abs() < 1e-9,
                    "{peer}@{cid}: est {est} vs oracle {oracle}"
                );
            }
        }
    }

    #[test]
    fn selfish_choice_agrees_with_best_response() {
        let sys = fixture();
        let mut net = SimNetwork::new();
        let obs = simulate_period(&sys, &mut net);
        let current = sys.overlay().cluster_of(PeerId(0));
        let (choice, cost) = obs.selfish_choice(&sys, PeerId(0), current).unwrap();
        let br = crate::equilibrium::best_response(&sys, PeerId(0), true);
        assert_eq!(choice, br.cluster);
        let oracle = pcost(&sys, PeerId(0), br.cluster);
        assert!((cost - oracle).abs() < 1e-9);
    }

    #[test]
    fn observations_record_cid_annotations() {
        let sys = fixture();
        let mut net = SimNetwork::new();
        let obs = simulate_period(&sys, &mut net);
        let q1 = obs
            .of(PeerId(0))
            .iter()
            .find(|o| o.query == Query::keyword(Sym(1)))
            .unwrap();
        // Sym(1): 2 results from c0 (p1), 1 from c2 (p2).
        assert_eq!(q1.cluster_count(ClusterId(0)), 2);
        assert_eq!(q1.cluster_count(ClusterId(2)), 1);
        assert_eq!(q1.cluster_count(ClusterId(1)), 0);
        assert_eq!(q1.total, 3);
        assert_eq!(q1.own, 0);
    }

    #[test]
    fn observation_counts_match_distinct_workload_queries() {
        let sys = fixture();
        let mut net = SimNetwork::new();
        let obs = simulate_period(&sys, &mut net);
        // One observation per *distinct* query in each peer's workload,
        // regardless of occurrence counts — the buffer-reuse refactor
        // must not drop, duplicate, or reorder records.
        for p in [PeerId(0), PeerId(1), PeerId(2)] {
            assert_eq!(obs.of(p).len(), sys.workloads()[p.index()].iter().count());
        }
        // p0's records carry sorted, duplicate-free cluster annotations.
        for record in obs.of(PeerId(0)) {
            assert!(record.per_cluster.windows(2).all(|w| w[0].0 < w[1].0));
            let sum: u64 = record.per_cluster.iter().map(|&(_, n)| n).sum();
            assert_eq!(sum, record.total);
        }
    }

    #[test]
    fn period_traffic_scales_with_occurrence_counts() {
        // p0 issues kw(1) twice: the ledger must charge both occurrences
        // (merge_scaled path), matching the old merge-per-occurrence
        // accounting.
        let sys = fixture();
        let mut net = SimNetwork::new();
        let _ = simulate_period(&sys, &mut net);
        let mut single = SimNetwork::new();
        let mut w = Workload::new();
        w.add(Query::keyword(Sym(1)), 1);
        w.add(Query::keyword(Sym(2)), 1);
        let mut sys1 = fixture();
        sys1.set_workload(PeerId(0), w);
        let _ = simulate_period(&sys1, &mut single);
        assert!(net.total_messages() > single.total_messages());
    }

    #[test]
    fn period_charges_query_traffic() {
        let sys = fixture();
        let mut net = SimNetwork::new();
        let _ = simulate_period(&sys, &mut net);
        assert!(net.total_messages() > 0);
    }

    #[test]
    fn idle_peers_have_no_observations() {
        let sys = fixture();
        let mut net = SimNetwork::new();
        let obs = simulate_period(&sys, &mut net);
        assert!(obs.of(PeerId(2)).is_empty());
        // …but p2 still *served* p0's queries.
        assert!(obs.estimated_contribution(PeerId(2), ClusterId(0)) > 0.0);
    }
}
