//! Equivalence suite for the delta-maintained cost engine: after *any*
//! random sequence of moves, joins, and leaves, the incrementally
//! updated [`RecallIndex`] must equal a from-scratch `rebuild()` —
//! every cluster-mass numerator, derived float mass, query total, and
//! cluster size **bit-identical**, not merely close. This is the
//! contract that lets the protocol hot path skip the O(queries × peers)
//! refresh after every relocation.

use proptest::prelude::*;
use recluster_core::{pcost, GameConfig, RecallIndex, System};
use recluster_overlay::{ContentStore, Overlay, Theta};
use recluster_types::{ClusterId, Document, PeerId, Query, Sym, Workload};

const N_PEERS: usize = 10;
const N_SYMS: u32 = 6;

/// A membership operation; values are folded into the valid range by
/// the interpreter so any random vector is a valid script.
#[derive(Debug, Clone)]
enum Op {
    Move { peer: u32, to: u32 },
    Leave { peer: u32 },
    Join { peer: u32, to: u32 },
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0u32..N_PEERS as u32, 0u32..N_PEERS as u32)
                .prop_map(|(peer, to)| Op::Move { peer, to }),
            (0u32..N_PEERS as u32).prop_map(|peer| Op::Leave { peer }),
            (0u32..N_PEERS as u32, 0u32..N_PEERS as u32)
                .prop_map(|(peer, to)| Op::Join { peer, to }),
        ],
        0..40,
    )
}

/// Deterministic content/workload fixture: peer `i` holds documents
/// over syms `i % N_SYMS` and `(i + 1) % N_SYMS`, and queries two syms
/// offset from its own — every peer both provides and consumes.
fn fixture(seed_docs: &[Vec<u32>], seed_queries: &[Vec<u32>]) -> System {
    let mut overlay = Overlay::singletons(N_PEERS);
    // Start from a non-trivial clustering.
    for i in 0..N_PEERS {
        overlay.move_peer(
            PeerId::from_index(i),
            ClusterId::from_index(i % (N_PEERS / 2)),
        );
    }
    let mut store = ContentStore::new(N_PEERS);
    for (i, syms) in seed_docs.iter().enumerate() {
        for &s in syms {
            store.add(
                PeerId::from_index(i),
                Document::new(vec![Sym(s % N_SYMS), Sym((s + 1) % N_SYMS)]),
            );
        }
    }
    let mut workloads = Vec::with_capacity(N_PEERS);
    for syms in seed_queries {
        let mut w = Workload::new();
        for (k, &s) in syms.iter().enumerate() {
            w.add(Query::keyword(Sym(s % N_SYMS)), 1 + (k as u64 % 3));
        }
        workloads.push(w);
    }
    workloads.resize(N_PEERS, Workload::new());
    System::new(
        overlay,
        store,
        workloads,
        GameConfig {
            alpha: 1.0,
            theta: Theta::Linear,
        },
    )
}

/// Asserts the delta-maintained index state equals the oracle exactly.
fn assert_index_equals_rebuild(sys: &System) -> Result<(), TestCaseError> {
    let mut oracle: RecallIndex = sys.index().clone();
    oracle.rebuild(sys.overlay());
    let cmax = sys.overlay().cmax();
    for qid in 0..sys.index().n_queries() as u32 {
        prop_assert_eq!(
            sys.index().total(qid),
            oracle.total(qid),
            "total qid {}",
            qid
        );
        for c in 0..cmax {
            let cid = ClusterId::from_index(c);
            prop_assert_eq!(
                sys.index().cluster_mass_num(qid, cid),
                oracle.cluster_mass_num(qid, cid),
                "mass numerator qid {} cluster {}",
                qid,
                c
            );
            prop_assert_eq!(
                sys.index().cluster_mass(qid, cid).to_bits(),
                oracle.cluster_mass(qid, cid).to_bits(),
                "float mass qid {} cluster {}",
                qid,
                c
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The headline equivalence: any op sequence, checked op by op.
    #[test]
    fn delta_index_equals_rebuild_under_random_ops(
        docs in proptest::collection::vec(proptest::collection::vec(0u32..N_SYMS, 0..4), N_PEERS),
        queries in proptest::collection::vec(proptest::collection::vec(0u32..N_SYMS, 0..4), N_PEERS),
        ops in arb_ops(),
    ) {
        let mut sys = fixture(&docs, &queries);
        for op in ops {
            match op {
                Op::Move { peer, to } => {
                    let peer = PeerId(peer);
                    let to = ClusterId(to % sys.overlay().cmax() as u32);
                    if sys.overlay().cluster_of(peer).is_some() {
                        sys.move_peer(peer, to);
                    }
                }
                Op::Leave { peer } => {
                    let _ = sys.leave_peer(PeerId(peer));
                }
                Op::Join { peer, to } => {
                    let peer = PeerId(peer);
                    let to = ClusterId(to % sys.overlay().cmax() as u32);
                    if sys.overlay().cluster_of(peer).is_none() {
                        sys.join_peer(peer, to);
                    }
                }
            }
            sys.overlay().check_invariants().map_err(TestCaseError::fail)?;
            assert_index_equals_rebuild(&sys)?;
        }
        // Cluster sizes agree with a scan of the assignment (the O(1)
        // live-count and the per-cluster member lists never drift).
        let sizes = sys.overlay().sizes();
        let total: usize = sizes.iter().sum();
        prop_assert_eq!(total, sys.overlay().n_peers());
    }

    /// Batch moves (the protocol's phase-2 path) are equivalent to the
    /// same moves applied one by one, and to a rebuild.
    #[test]
    fn batch_moves_equal_singles_and_rebuild(
        docs in proptest::collection::vec(proptest::collection::vec(0u32..N_SYMS, 0..4), N_PEERS),
        queries in proptest::collection::vec(proptest::collection::vec(0u32..N_SYMS, 0..4), N_PEERS),
        moves in proptest::collection::vec(
            (0u32..N_PEERS as u32, 0u32..N_PEERS as u32),
            0..12,
        ),
    ) {
        let mut batched = fixture(&docs, &queries);
        let mut single = fixture(&docs, &queries);
        let moves: Vec<(PeerId, ClusterId)> = moves
            .into_iter()
            .map(|(p, c)| (PeerId(p), ClusterId(c)))
            .collect();
        batched.move_peers(&moves);
        for &(p, c) in &moves {
            single.move_peer(p, c);
        }
        prop_assert_eq!(batched.overlay(), single.overlay());
        assert_index_equals_rebuild(&batched)?;
        assert_index_equals_rebuild(&single)?;
    }

    /// `pcost` computed on the delta-maintained index equals `pcost` on
    /// a freshly rebuilt system, bit for bit, for every peer × cluster.
    #[test]
    fn pcost_on_delta_index_equals_rebuilt(
        docs in proptest::collection::vec(proptest::collection::vec(0u32..N_SYMS, 0..4), N_PEERS),
        queries in proptest::collection::vec(proptest::collection::vec(0u32..N_SYMS, 0..4), N_PEERS),
        moves in proptest::collection::vec(
            (0u32..N_PEERS as u32, 0u32..N_PEERS as u32),
            0..12,
        ),
    ) {
        let mut sys = fixture(&docs, &queries);
        for (p, c) in moves {
            sys.move_peer(PeerId(p), ClusterId(c));
        }
        let mut rebuilt = sys.clone();
        rebuilt.rebuild_index();
        for peer in sys.overlay().peers() {
            for cid in sys.overlay().cluster_ids() {
                prop_assert_eq!(
                    pcost(&sys, peer, cid).to_bits(),
                    pcost(&rebuilt, peer, cid).to_bits(),
                    "pcost({:?}, {:?})",
                    peer,
                    cid
                );
            }
        }
    }
}
