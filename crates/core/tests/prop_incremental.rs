//! Equivalence suite for the delta-maintained cost engine: after *any*
//! random interleaving of membership changes (moves, joins, leaves),
//! churn events, content updates and workload updates, the incrementally
//! updated state must equal its from-scratch oracle **bit-identically**:
//!
//! * the [`RecallIndex`] (result rows, totals, workload weights, mass
//!   numerators, derived float masses) against
//!   [`RecallIndex::rebuild_from`], and
//! * the per-peer [`CostCache`](recluster_core::CostCache) (recall and
//!   `WCost` terms, live demand) against a wholesale
//!   [`System::rebuild_cost_cache`].
//!
//! This is the contract that lets the protocol and the churn driver
//! skip every O(queries × peers) rebuild: content updates and churn are
//! O(changed peers) too, not just relocations.

mod common;

use common::{apply, arb_ops, arb_seed_syms, fixture, N_PEERS};
use proptest::prelude::*;
use recluster_core::{pcost, RecallIndex, System};
use recluster_overlay::SimNetwork;
use recluster_types::{ClusterId, PeerId};

/// Asserts the delta-maintained index state equals the content-aware
/// oracle exactly: result rows, totals, workload weights, mass
/// numerators, and the derived float masses.
fn assert_index_equals_rebuild(sys: &System) -> Result<(), TestCaseError> {
    let mut oracle: RecallIndex = sys.index().clone();
    oracle.rebuild_from(sys.overlay(), sys.store(), sys.workloads());
    let cmax = sys.overlay().cmax();
    for slot in 0..sys.overlay().n_slots() {
        let peer = PeerId::from_index(slot);
        prop_assert_eq!(
            sys.index().results_of(peer),
            oracle.results_of(peer),
            "result row of peer {}",
            slot
        );
        let delta_w = sys.index().workload_of(peer);
        let oracle_w = oracle.workload_of(peer);
        prop_assert_eq!(delta_w.len(), oracle_w.len(), "weight row of peer {}", slot);
        for (d, o) in delta_w.iter().zip(oracle_w) {
            prop_assert_eq!(d.0, o.0);
            prop_assert_eq!(d.1.to_bits(), o.1.to_bits(), "weight bits of peer {}", slot);
        }
    }
    for qid in 0..sys.index().n_queries() as u32 {
        prop_assert_eq!(
            sys.index().total(qid),
            oracle.total(qid),
            "total qid {}",
            qid
        );
        for c in 0..cmax {
            let cid = ClusterId::from_index(c);
            prop_assert_eq!(
                sys.index().cluster_mass_num(qid, cid),
                oracle.cluster_mass_num(qid, cid),
                "mass numerator qid {} cluster {}",
                qid,
                c
            );
            prop_assert_eq!(
                sys.index().cluster_mass(qid, cid).to_bits(),
                oracle.cluster_mass(qid, cid).to_bits(),
                "float mass qid {} cluster {}",
                qid,
                c
            );
        }
    }
    Ok(())
}

/// Asserts the delta-maintained cost cache equals a wholesale rebuild
/// bit for bit: all three recall columns of every slot (in-cluster
/// loss, wcost contribution, zero-overlap away loss), and the live
/// demand.
fn assert_cache_equals_rebuild(sys: &System) -> Result<(), TestCaseError> {
    let mut oracle = sys.clone();
    oracle.rebuild_cost_cache();
    let delta = sys.cost_cache();
    let fresh = oracle.cost_cache();
    prop_assert_eq!(delta.live_demand(), fresh.live_demand(), "live demand");
    for slot in 0..sys.overlay().n_slots() {
        let p = PeerId::from_index(slot);
        prop_assert_eq!(
            delta.recall_loss_of(p).to_bits(),
            fresh.recall_loss_of(p).to_bits(),
            "recall term of peer {}",
            slot
        );
        prop_assert_eq!(
            delta.wrecall_of(p).to_bits(),
            fresh.wrecall_of(p).to_bits(),
            "wcost term of peer {}",
            slot
        );
        prop_assert_eq!(
            delta.away_of(p).to_bits(),
            fresh.away_of(p).to_bits(),
            "away term of peer {}",
            slot
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The headline equivalence: any interleaving of membership, churn,
    /// content and workload ops, checked op by op against all oracles.
    #[test]
    fn delta_state_equals_rebuild_under_random_ops(
        docs in arb_seed_syms(),
        queries in arb_seed_syms(),
        ops in arb_ops(40),
    ) {
        let mut sys = fixture(&docs, &queries);
        let mut net = SimNetwork::new();
        for op in ops {
            apply(&mut sys, &mut net, op);
            sys.overlay().check_invariants().map_err(TestCaseError::fail)?;
            assert_index_equals_rebuild(&sys)?;
            assert_cache_equals_rebuild(&sys)?;
        }
        // Cluster sizes agree with a scan of the assignment (the O(1)
        // live-count and the per-cluster member lists never drift).
        let sizes = sys.overlay().sizes();
        let total: usize = sizes.iter().sum();
        prop_assert_eq!(total, sys.overlay().n_peers());
    }

    /// Batch moves (the protocol's phase-2 path) are equivalent to the
    /// same moves applied one by one, and to a rebuild.
    #[test]
    fn batch_moves_equal_singles_and_rebuild(
        docs in arb_seed_syms(),
        queries in arb_seed_syms(),
        moves in proptest::collection::vec(
            (0u32..N_PEERS as u32, 0u32..N_PEERS as u32),
            0..12,
        ),
    ) {
        let mut batched = fixture(&docs, &queries);
        let mut single = fixture(&docs, &queries);
        let moves: Vec<(PeerId, ClusterId)> = moves
            .into_iter()
            .map(|(p, c)| (PeerId(p), ClusterId(c)))
            .collect();
        batched.move_peers(&moves);
        for &(p, c) in &moves {
            single.move_peer(p, c);
        }
        prop_assert_eq!(batched.overlay(), single.overlay());
        assert_index_equals_rebuild(&batched)?;
        assert_index_equals_rebuild(&single)?;
        assert_cache_equals_rebuild(&batched)?;
    }

    /// `pcost` computed on the delta-maintained index equals `pcost` on
    /// a freshly rebuilt system, bit for bit, for every peer × cluster —
    /// even across content and workload changes, where a fresh
    /// [`System::rebuild_index`] renumbers query ids.
    #[test]
    fn pcost_on_delta_index_equals_rebuilt(
        docs in arb_seed_syms(),
        queries in arb_seed_syms(),
        ops in arb_ops(40),
    ) {
        let mut sys = fixture(&docs, &queries);
        let mut net = SimNetwork::new();
        for op in ops {
            apply(&mut sys, &mut net, op);
        }
        let mut rebuilt = sys.clone();
        rebuilt.rebuild_index();
        rebuilt.rebuild_cost_cache();
        for peer in sys.overlay().peers() {
            for cid in sys.overlay().cluster_ids() {
                prop_assert_eq!(
                    pcost(&sys, peer, cid).to_bits(),
                    pcost(&rebuilt, peer, cid).to_bits(),
                    "pcost({:?}, {:?})",
                    peer,
                    cid
                );
            }
        }
        // The global criteria agree too — they read the cost cache.
        prop_assert_eq!(
            recluster_core::scost(&sys).to_bits(),
            recluster_core::scost(&rebuilt).to_bits()
        );
        prop_assert_eq!(
            recluster_core::wcost(&sys).to_bits(),
            recluster_core::wcost(&rebuilt).to_bits()
        );
    }
}
