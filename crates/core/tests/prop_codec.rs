//! Codec property suite for the runtime's wire grammar: over
//! *arbitrary* field values — every id, raw IEEE-754 gain bits
//! (NaNs, infinities and negative zero included), full-range
//! commitments and nonces — a [`Message`] round-trips **bitwise**
//! through encode/decode, and every malformed buffer (truncated at any
//! point, extended by any suffix, unknown tag, undefined discriminant)
//! is rejected with the matching [`DecodeError`], never a panic.

use proptest::prelude::*;
use recluster_core::{DecodeError, DenyReason, Message};
use recluster_types::{ClusterId, PeerId};

/// Bit-comparable form: the encoded frame. Two messages are
/// bit-identical iff their frames are (gains compare as raw bits, so
/// NaN payloads count).
fn bits(m: &Message) -> Vec<u8> {
    m.encode()
}

/// Arbitrary gain bits: the full u64 space reinterpreted as f64, so
/// quiet/signalling NaNs, ±∞ and -0.0 all appear.
fn arb_gain() -> impl Strategy<Value = f64> {
    (0u64..=u64::MAX).prop_map(f64::from_bits)
}

fn arb_message() -> impl Strategy<Value = Message> {
    let peer = || (0u32..=u32::MAX).prop_map(PeerId);
    let cluster = || (0u32..=u32::MAX).prop_map(ClusterId);
    let reason = prop_oneof![Just(DenyReason::Locked), Just(DenyReason::SelfMove)];
    prop_oneof![
        (peer(), cluster(), cluster(), arb_gain(), 0u64..=u64::MAX).prop_map(
            |(peer, from, to, claimed_gain, commitment)| Message::Propose {
                peer,
                from,
                to,
                claimed_gain,
                commitment,
            }
        ),
        (peer(), cluster()).prop_map(|(peer, from)| Message::Heartbeat { peer, from }),
        (cluster(), cluster(), peer(), arb_gain()).prop_map(|(src, dst, peer, gain)| {
            Message::Grant {
                src,
                dst,
                peer,
                gain,
            }
        }),
        (cluster(), cluster(), peer(), reason).prop_map(|(src, dst, peer, reason)| {
            Message::Deny {
                src,
                dst,
                peer,
                reason,
            }
        }),
        (peer(), cluster(), cluster(), arb_gain(), 0u64..=u64::MAX).prop_map(
            |(peer, from, to, claimed_gain, nonce)| Message::Commit {
                peer,
                from,
                to,
                claimed_gain,
                nonce,
            }
        ),
        (cluster(), 0u32..=u32::MAX)
            .prop_map(|(cluster, size)| Message::SummaryUpdate { cluster, size }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode → decode → encode is the identity on frames, for every
    /// variant and every field value — NaN gain bits included.
    #[test]
    fn every_message_round_trips_bitwise(msg in arb_message()) {
        let frame = msg.encode();
        let back = Message::decode(&frame).expect("own encoding must decode");
        prop_assert_eq!(
            bits(&back), frame,
            "decode(encode(m)) re-encodes to different bytes"
        );
    }

    /// Every strict prefix of a valid frame is `Truncated` (or, for the
    /// empty buffer, still `Truncated` — the tag itself is missing).
    /// No prefix panics, and none decodes to anything.
    #[test]
    fn every_strict_prefix_is_rejected_as_truncated(msg in arb_message()) {
        let frame = msg.encode();
        for len in 0..frame.len() {
            prop_assert_eq!(
                Message::decode(&frame[..len]),
                Err(DecodeError::Truncated),
                "prefix of length {} of {:?}", len, msg
            );
        }
    }

    /// Any non-empty suffix makes the frame over-length: rejected as
    /// `TrailingBytes`, never silently ignored.
    #[test]
    fn over_length_frames_are_rejected(msg in arb_message(), junk in proptest::collection::vec(0u8..=u8::MAX, 1..16)) {
        let mut frame = msg.encode();
        frame.extend_from_slice(&junk);
        prop_assert_eq!(Message::decode(&frame), Err(DecodeError::TrailingBytes));
    }

    /// Unknown leading tags are attributed as `UnknownTag`, whatever
    /// follows them.
    #[test]
    fn unknown_tags_are_rejected(tag in 7u8..=u8::MAX, body in proptest::collection::vec(0u8..=u8::MAX, 0..40)) {
        let mut frame = vec![tag];
        frame.extend_from_slice(&body);
        prop_assert_eq!(Message::decode(&frame), Err(DecodeError::UnknownTag(tag)));
    }

    /// A `Deny` whose reason byte holds an undefined discriminant is
    /// rejected as `BadDiscriminant`, carrying the offending byte.
    #[test]
    fn bad_deny_discriminants_are_rejected(
        src in 0u32..=u32::MAX,
        dst in 0u32..=u32::MAX,
        peer in 0u32..=u32::MAX,
        disc in 2u8..=u8::MAX,
    ) {
        let mut frame = Message::Deny {
            src: ClusterId(src),
            dst: ClusterId(dst),
            peer: PeerId(peer),
            reason: DenyReason::Locked,
        }
        .encode();
        *frame.last_mut().unwrap() = disc;
        prop_assert_eq!(Message::decode(&frame), Err(DecodeError::BadDiscriminant(disc)));
    }

    /// Arbitrary byte soup never panics the decoder: it either decodes
    /// (and then re-encodes to exactly the input) or errors.
    #[test]
    fn arbitrary_buffers_never_panic(buf in proptest::collection::vec(0u8..=u8::MAX, 0..64)) {
        if let Ok(msg) = Message::decode(&buf) {
            prop_assert_eq!(msg.encode(), buf, "lossy decode of {:?}", msg);
        }
    }
}
