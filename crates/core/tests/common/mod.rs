//! Shared mutation-script interpreter for the core equivalence suites.
//!
//! `prop_incremental.rs` (delta-maintained index/cache vs. rebuild
//! oracles) and `prop_view_memo.rs` (view reads vs. `System` reads, and
//! the proposal-memo validity gate) exercise the *same* op universe —
//! every mutation class [`System`] supports, interleaved arbitrarily —
//! so the universe is defined once here: adding a new mutator to
//! `System` means extending one interpreter and every suite faces it.
//! (`prop_routing.rs` keeps its own, deliberately different universe:
//! fewer peers, no plain leave/join, routing-shaped workloads.)

use proptest::prelude::*;
use recluster_core::{GameConfig, System};
use recluster_overlay::{ChurnEvent, ContentStore, Overlay, SimNetwork, SummaryBatch, Theta};
use recluster_types::{ClusterId, Document, PeerId, Query, Sym, Workload};

pub const N_PEERS: usize = 10;
pub const N_SYMS: u32 = 6;

/// A membership/content/workload operation; values are folded into the
/// valid range by the interpreter so any random vector is a valid
/// script.
#[derive(Debug, Clone)]
pub enum Op {
    Move { peer: u32, to: u32 },
    Leave { peer: u32 },
    Join { peer: u32, to: u32 },
    ChurnLeave { peer: u32 },
    ChurnJoin { to: u32, doc_syms: Vec<u32> },
    SetContent { peer: u32, doc_syms: Vec<u32> },
    SetWorkload { peer: u32, q_syms: Vec<u32> },
}

/// A random script of up to `max_ops` operations over every mutation
/// class.
pub fn arb_ops(max_ops: usize) -> impl Strategy<Value = Vec<Op>> {
    let syms = || proptest::collection::vec(0u32..N_SYMS, 0..4);
    proptest::collection::vec(
        prop_oneof![
            (0u32..N_PEERS as u32, 0u32..N_PEERS as u32)
                .prop_map(|(peer, to)| Op::Move { peer, to }),
            (0u32..N_PEERS as u32).prop_map(|peer| Op::Leave { peer }),
            (0u32..N_PEERS as u32, 0u32..N_PEERS as u32)
                .prop_map(|(peer, to)| Op::Join { peer, to }),
            (0u32..N_PEERS as u32).prop_map(|peer| Op::ChurnLeave { peer }),
            (0u32..N_PEERS as u32, syms())
                .prop_map(|(to, doc_syms)| Op::ChurnJoin { to, doc_syms }),
            (0u32..N_PEERS as u32, syms())
                .prop_map(|(peer, doc_syms)| Op::SetContent { peer, doc_syms }),
            (0u32..N_PEERS as u32, syms())
                .prop_map(|(peer, q_syms)| Op::SetWorkload { peer, q_syms }),
        ],
        0..max_ops,
    )
}

/// The per-test generator of seed content/workload shapes.
pub fn arb_seed_syms() -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(proptest::collection::vec(0u32..N_SYMS, 0..4), N_PEERS)
}

/// Deterministic content/workload fixture: peer `i` holds documents
/// over syms `i % N_SYMS` and `(i + 1) % N_SYMS`, and queries two syms
/// offset from its own — every peer both provides and consumes.
pub fn fixture(seed_docs: &[Vec<u32>], seed_queries: &[Vec<u32>]) -> System {
    let mut overlay = Overlay::singletons(N_PEERS);
    // Start from a non-trivial clustering.
    for i in 0..N_PEERS {
        overlay.move_peer(
            PeerId::from_index(i),
            ClusterId::from_index(i % (N_PEERS / 2)),
        );
    }
    let mut store = ContentStore::new(N_PEERS);
    for (i, syms) in seed_docs.iter().enumerate() {
        for &s in syms {
            store.add(
                PeerId::from_index(i),
                Document::new(vec![Sym(s % N_SYMS), Sym((s + 1) % N_SYMS)]),
            );
        }
    }
    let mut workloads = Vec::with_capacity(N_PEERS);
    for syms in seed_queries {
        let mut w = Workload::new();
        for (k, &s) in syms.iter().enumerate() {
            w.add(Query::keyword(Sym(s % N_SYMS)), 1 + (k as u64 % 3));
        }
        workloads.push(w);
    }
    workloads.resize(N_PEERS, Workload::new());
    System::new(
        overlay,
        store,
        workloads,
        GameConfig {
            alpha: 1.0,
            theta: Theta::Linear,
        },
    )
}

/// Interprets an op against the system through the public hooks.
pub fn apply(sys: &mut System, net: &mut SimNetwork, op: Op) {
    match op {
        Op::Move { peer, to } => {
            let peer = PeerId(peer);
            let to = ClusterId(to % sys.overlay().cmax() as u32);
            if sys.overlay().cluster_of(peer).is_some() {
                sys.move_peer(peer, to);
            }
        }
        Op::Leave { peer } => {
            let _ = sys.leave_peer(PeerId(peer));
        }
        Op::Join { peer, to } => {
            let peer = PeerId(peer);
            let to = ClusterId(to % sys.overlay().cmax() as u32);
            if sys.overlay().cluster_of(peer).is_none() {
                sys.join_peer(peer, to);
            }
        }
        Op::ChurnLeave { peer } => {
            let peer = PeerId(peer % sys.overlay().n_slots() as u32);
            if sys
                .apply_churn_event(net, ChurnEvent::Leave { peer })
                .is_some()
            {
                // Churn drivers clear the leaver's workload as well.
                sys.set_workload(peer, Workload::new());
            }
        }
        Op::ChurnJoin { to, doc_syms } => {
            let cluster = ClusterId(to % sys.overlay().cmax() as u32);
            let docs: Vec<Document> = doc_syms
                .iter()
                .map(|&s| Document::new(vec![Sym(s % N_SYMS), Sym((s + 1) % N_SYMS)]))
                .collect();
            if let Some(delta) = sys.apply_churn_event(net, ChurnEvent::Join { cluster, docs }) {
                // Newcomers get a workload querying their own syms — some
                // of these queries may be new to the index.
                let mut w = Workload::new();
                for &s in &doc_syms {
                    w.add(Query::keyword(Sym((s + 2) % N_SYMS)), 1 + u64::from(s % 2));
                }
                sys.set_workload(delta.peer(), w);
            }
        }
        Op::SetContent { peer, doc_syms } => {
            let peer = PeerId(peer % sys.overlay().n_slots() as u32);
            let docs = doc_syms
                .into_iter()
                .map(|s| Document::new(vec![Sym(s % N_SYMS), Sym((s + 2) % N_SYMS)]))
                .collect();
            sys.set_content(peer, docs);
        }
        Op::SetWorkload { peer, q_syms } => {
            let peer = PeerId(peer % sys.overlay().n_slots() as u32);
            let mut w = Workload::new();
            for (k, &s) in q_syms.iter().enumerate() {
                w.add(Query::keyword(Sym(s % N_SYMS)), 1 + (k as u64 % 2));
                if k % 2 == 1 {
                    // Conjunctions can be genuinely new queries.
                    w.add(Query::new(vec![Sym(s % N_SYMS), Sym((s + 1) % N_SYMS)]), 1);
                }
            }
            sys.set_workload(peer, w);
        }
    }
}

/// Interprets an op exactly like [`apply`] while *also* recording its
/// summary delta into `batch` — the deferred-publication path the
/// traffic engine rides. The `System`'s own eagerly maintained
/// summaries stay the per-event oracle a later flush must land on
/// bitwise (`prop_batch.rs` holds that contract over this whole op
/// universe).
#[allow(dead_code)] // each test binary compiles its own `common`; only prop_batch uses this.
pub fn apply_batched(sys: &mut System, net: &mut SimNetwork, batch: &mut SummaryBatch, op: Op) {
    match &op {
        Op::Move { peer, to } => {
            let peer = PeerId(*peer);
            let to = ClusterId(*to % sys.overlay().cmax() as u32);
            let from = sys.overlay().cluster_of(peer);
            let docs = sys.store().docs(peer).to_vec();
            apply(sys, net, op.clone());
            if let Some(from) = from {
                batch.record_move(&docs, from, to);
            }
        }
        Op::Leave { peer } => {
            let peer = PeerId(*peer);
            let from = sys.overlay().cluster_of(peer);
            // A soft leave keeps the docs in the store but they vanish
            // from the cluster's summary — same delta as a churn leave.
            let docs = sys.store().docs(peer).to_vec();
            apply(sys, net, op.clone());
            if let Some(from) = from {
                batch.record_leave(&docs, from);
            }
        }
        Op::Join { peer, to } => {
            let peer = PeerId(*peer);
            let to = ClusterId(*to % sys.overlay().cmax() as u32);
            let was_unassigned = sys.overlay().cluster_of(peer).is_none();
            apply(sys, net, op.clone());
            if was_unassigned {
                batch.record_join(sys.store().docs(peer), to);
            }
        }
        Op::ChurnLeave { peer } => {
            let peer = PeerId(*peer % sys.overlay().n_slots() as u32);
            let from = sys.overlay().cluster_of(peer);
            // The churn hook drops the leaver's docs from the store, so
            // snapshot them first — exactly what the traffic engine does.
            let docs = sys.store().docs(peer).to_vec();
            apply(sys, net, op.clone());
            if let Some(from) = from {
                batch.record_leave(&docs, from);
            }
        }
        Op::ChurnJoin { .. } => {
            // The joiner occupies a fresh slot; detect it by growth.
            let slots_before = sys.overlay().n_slots();
            apply(sys, net, op.clone());
            if sys.overlay().n_slots() > slots_before {
                let peer = PeerId::from_index(slots_before);
                let to = sys
                    .overlay()
                    .cluster_of(peer)
                    .expect("a churn joiner is always assigned");
                batch.record_join(sys.store().docs(peer), to);
            }
        }
        Op::SetContent { peer, .. } => {
            let peer = PeerId(*peer % sys.overlay().n_slots() as u32);
            let cid = sys.overlay().cluster_of(peer);
            let old = sys.store().docs(peer).to_vec();
            apply(sys, net, op.clone());
            if let Some(cid) = cid {
                batch.record_content_update(cid, &old, sys.store().docs(peer));
            }
        }
        // Workloads never touch content summaries.
        Op::SetWorkload { .. } => apply(sys, net, op.clone()),
    }
}
