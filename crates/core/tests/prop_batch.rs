//! Equivalence suite for **batched summary publication**: after any
//! random interleaving of membership changes, churn events, content
//! updates and workload updates — recorded into a
//! [`SummaryBatch`](recluster_overlay::SummaryBatch) and flushed at
//! arbitrary points — the *published* summaries must equal both
//!
//! * the per-event path: the `System`'s eagerly delta-maintained
//!   [`ClusterSummaries`], and
//! * the from-scratch oracle: [`ClusterSummaries::build`] over the
//!   final overlay + store,
//!
//! **bit-identically** (all summary quantities are integers, so the
//! net-sum of coalesced deltas replays exactly). This is the contract
//! that lets the traffic engine defer publication to the repair
//! cadence: queries route against a *stale* copy between flushes, but
//! every flush lands exactly on what eager per-event broadcast would
//! have produced.
//!
//! Shares the op universe with `prop_incremental.rs` /
//! `prop_view_memo.rs` via `common::apply_batched`, so every mutation
//! class `System` supports faces the batch too.

mod common;

use common::{apply_batched, arb_ops, arb_seed_syms, fixture};
use proptest::prelude::*;
use recluster_overlay::{ClusterSummaries, SimNetwork, SummaryBatch};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Flush at every third op *and* at the end: each published state
    /// must land bitwise on the eager per-event summaries, and the
    /// final one on the from-scratch oracle as well.
    #[test]
    fn batched_flush_equals_per_event_and_rebuild(
        seed_docs in arb_seed_syms(),
        seed_queries in arb_seed_syms(),
        ops in arb_ops(24),
    ) {
        let mut sys = fixture(&seed_docs, &seed_queries);
        let mut net = SimNetwork::new();
        let mut published = sys.summaries().clone();
        let mut batch = SummaryBatch::new();
        for (i, op) in ops.into_iter().enumerate() {
            apply_batched(&mut sys, &mut net, &mut batch, op);
            if i % 3 == 2 {
                batch.flush_into(&mut published);
                published.ensure_cmax(sys.overlay().cmax());
                prop_assert_eq!(
                    &published,
                    sys.summaries(),
                    "mid-script flush diverged from the per-event path"
                );
            }
        }
        batch.flush_into(&mut published);
        published.ensure_cmax(sys.overlay().cmax());
        prop_assert_eq!(
            &published,
            sys.summaries(),
            "final flush diverged from the per-event path"
        );
        let oracle = ClusterSummaries::build(sys.overlay(), sys.store());
        prop_assert_eq!(
            &published,
            &oracle,
            "final flush diverged from the from-scratch oracle"
        );
        prop_assert!(batch.is_empty(), "flush must drain the batch");
    }

    /// One deferred flush over the whole script equals many eager
    /// flushes: coalescing is associative, so *where* the publication
    /// points fall never changes where they land.
    #[test]
    fn flush_points_are_immaterial(
        seed_docs in arb_seed_syms(),
        seed_queries in arb_seed_syms(),
        ops in arb_ops(16),
    ) {
        let mut eager_sys = fixture(&seed_docs, &seed_queries);
        let mut eager_net = SimNetwork::new();
        let mut eager_pub = eager_sys.summaries().clone();
        let mut eager_batch = SummaryBatch::new();

        let mut lazy_sys = fixture(&seed_docs, &seed_queries);
        let mut lazy_net = SimNetwork::new();
        let mut lazy_pub = lazy_sys.summaries().clone();
        let mut lazy_batch = SummaryBatch::new();

        for op in ops {
            apply_batched(&mut eager_sys, &mut eager_net, &mut eager_batch, op.clone());
            eager_batch.flush_into(&mut eager_pub);
            apply_batched(&mut lazy_sys, &mut lazy_net, &mut lazy_batch, op);
        }
        lazy_batch.flush_into(&mut lazy_pub);
        eager_pub.ensure_cmax(eager_sys.overlay().cmax());
        lazy_pub.ensure_cmax(lazy_sys.overlay().cmax());
        prop_assert_eq!(&eager_pub, &lazy_pub);
    }
}
