//! Equivalence suite for peer-range sharding: after *any* random
//! interleaving of membership changes, churn events, content updates
//! and workload updates,
//!
//! 1. a sharded [`CostCache`](recluster_core::CostCache) flush (and the
//!    sharded wholesale rebuild) produces the same recall / wcost /
//!    away columns as the sequential flush, **bit for bit**, under
//!    pinned 1-, 2- and 8-thread pools, and
//! 2. the sharded per-period tracker walk produces the same
//!    observations, routing report, forward histogram and network
//!    ledger as the sequential walk, bit for bit, under the same pools.
//!
//! This is the contract that lets the million-peer churn path fan its
//! two remaining single-threaded hot loops across cores without the
//! worker count ever reaching the output bytes — the same guarantee
//! the CI determinism matrix pins end-to-end.

mod common;

use common::{apply, arb_ops, arb_seed_syms, fixture};
use proptest::prelude::*;
use rayon::ThreadPoolBuilder;
use recluster_core::shard::set_shard_min_override;
use recluster_core::{simulate_period_routed_full, System};
use recluster_overlay::{RoutingMode, SimNetwork, SummaryMode};
use recluster_types::PeerId;

/// Flushes the cost cache (whatever sharding the current overrides
/// select) and snapshots all three recall columns as bits.
fn flush_columns(sys: &System) -> Vec<(u64, u64, u64)> {
    let cache = sys.cost_cache();
    (0..sys.overlay().n_slots())
        .map(|slot| {
            let p = PeerId::from_index(slot);
            (
                cache.recall_loss_of(p).to_bits(),
                cache.wrecall_of(p).to_bits(),
                cache.away_of(p).to_bits(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sharded flush, sharded rebuild and the sharded period walk are
    /// byte-identical to their sequential forms under every pinned
    /// worker count.
    #[test]
    fn sharded_flush_and_period_equal_sequential(
        docs in arb_seed_syms(),
        queries in arb_seed_syms(),
        ops in arb_ops(30),
    ) {
        let mode = RoutingMode::Routed(SummaryMode::Exact);

        // Accumulate a dirty cost cache, then clone it so every
        // configuration flushes the *same* pending state.
        let mut dirty = fixture(&docs, &queries);
        let mut net = SimNetwork::new();
        for op in ops {
            apply(&mut dirty, &mut net, op);
        }

        // Reference: forced-sequential flush + period walk.
        set_shard_min_override(Some(usize::MAX));
        let seq = dirty.clone();
        let seq_cols = flush_columns(&seq);
        let mut seq_net = SimNetwork::new();
        let (seq_obs, seq_rep, seq_hist) =
            simulate_period_routed_full(&seq, &mut seq_net, mode);

        // The sharded wholesale rebuild agrees with the sequential
        // flush too (rebuild is the flush's oracle).
        let mut rebuilt = seq.clone();
        set_shard_min_override(Some(1));
        rebuilt.rebuild_cost_cache();
        let rebuilt_cols = flush_columns(&rebuilt);
        prop_assert_eq!(&seq_cols, &rebuilt_cols, "sharded rebuild vs sequential flush");

        // Sharding forced on, under pinned 1/2/8-thread pools.
        for threads in [1usize, 2, 8] {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("shim pool build never fails");
            let sys = dirty.clone();
            let mut par_net = SimNetwork::new();
            let (par_cols, par_obs, par_rep, par_hist) = pool.install(|| {
                let cols = flush_columns(&sys);
                let (obs, rep, hist) = simulate_period_routed_full(&sys, &mut par_net, mode);
                (cols, obs, rep, hist)
            });
            prop_assert_eq!(&seq_cols, &par_cols, "flush columns, {} threads", threads);
            prop_assert_eq!(&seq_obs, &par_obs, "observations, {} threads", threads);
            prop_assert_eq!(seq_rep, par_rep, "report, {} threads", threads);
            prop_assert_eq!(&seq_hist, &par_hist, "histogram, {} threads", threads);
            prop_assert_eq!(seq_net.total_messages(), par_net.total_messages());
            prop_assert_eq!(seq_net.total_bytes(), par_net.total_bytes());
        }
        set_shard_min_override(None);
    }
}
