//! Equivalence suite for cluster-directed routing: after *any* random
//! sequence of moves, churn joins/leaves, and content updates,
//!
//! 1. the delta-maintained [`ClusterSummaries`] must equal a
//!    from-scratch `build()` — every term count and document count
//!    identical, and
//! 2. routed `simulate_period` with **exact** summaries must be
//!    **bit-identical** to flooding: the same observations (per-cluster
//!    recall annotations, totals, served/contribution credits), the
//!    same derived `pcost` estimates to the last float bit, and the
//!    same `ResultReturn` traffic — while never forwarding to more
//!    clusters than flood does.
//!
//! Lossy summaries are allowed to miss results, but every missed result
//! must be accounted: `returned + missed == flood-returned`.

use proptest::prelude::*;
use recluster_core::{simulate_period, simulate_period_routed, GameConfig, System};
use recluster_overlay::{
    ChurnEvent, ClusterSummaries, ContentStore, MsgKind, Overlay, RoutingMode, SimNetwork,
    SummaryMode, Theta,
};
use recluster_types::{ClusterId, Document, PeerId, Query, Sym, Workload};

const N_PEERS: usize = 8;
const N_SYMS: u32 = 6;

/// A membership/content operation; values are folded into the valid
/// range by the interpreter so any random vector is a valid script.
#[derive(Debug, Clone)]
enum Op {
    Move { peer: u32, to: u32 },
    ChurnLeave { peer: u32 },
    ChurnJoin { to: u32, doc_syms: Vec<u32> },
    ContentUpdate { peer: u32, doc_syms: Vec<u32> },
    WorkloadUpdate { peer: u32, q_syms: Vec<u32> },
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    let syms = || proptest::collection::vec(0u32..N_SYMS, 0..5);
    proptest::collection::vec(
        prop_oneof![
            (0u32..N_PEERS as u32, 0u32..N_PEERS as u32)
                .prop_map(|(peer, to)| Op::Move { peer, to }),
            (0u32..N_PEERS as u32).prop_map(|peer| Op::ChurnLeave { peer }),
            (0u32..N_PEERS as u32, syms())
                .prop_map(|(to, doc_syms)| Op::ChurnJoin { to, doc_syms }),
            (0u32..N_PEERS as u32, syms())
                .prop_map(|(peer, doc_syms)| Op::ContentUpdate { peer, doc_syms }),
            (0u32..N_PEERS as u32, syms())
                .prop_map(|(peer, q_syms)| Op::WorkloadUpdate { peer, q_syms }),
        ],
        0..24,
    )
}

/// Deterministic fixture: peer `i` holds documents over adjacent syms
/// and queries a couple of syms offset from its own, so every peer both
/// provides and consumes and results live in several clusters.
fn fixture(seed_docs: &[Vec<u32>], seed_queries: &[Vec<u32>]) -> System {
    let mut overlay = Overlay::singletons(N_PEERS);
    for i in 0..N_PEERS {
        overlay.move_peer(
            PeerId::from_index(i),
            ClusterId::from_index(i % (N_PEERS / 2)),
        );
    }
    let mut store = ContentStore::new(N_PEERS);
    for (i, syms) in seed_docs.iter().enumerate() {
        for &s in syms {
            store.add(
                PeerId::from_index(i),
                Document::new(vec![Sym(s % N_SYMS), Sym((s + 1) % N_SYMS)]),
            );
        }
    }
    let mut workloads = Vec::with_capacity(N_PEERS);
    for syms in seed_queries {
        let mut w = Workload::new();
        for (k, &s) in syms.iter().enumerate() {
            w.add(Query::keyword(Sym(s % N_SYMS)), 1 + (k as u64 % 3));
            if k % 2 == 0 {
                // Conjunctive queries exercise the summary's only
                // false-positive source (attrs that never co-occur).
                w.add(Query::new(vec![Sym(s % N_SYMS), Sym((s + 2) % N_SYMS)]), 1);
            }
        }
        workloads.push(w);
    }
    workloads.resize(N_PEERS, Workload::new());
    System::new(
        overlay,
        store,
        workloads,
        GameConfig {
            alpha: 1.0,
            theta: Theta::Linear,
        },
    )
}

/// Interprets an op against the system through the public hooks.
fn apply(sys: &mut System, net: &mut SimNetwork, op: Op) {
    match op {
        Op::Move { peer, to } => {
            let peer = PeerId(peer);
            let to = ClusterId(to % sys.overlay().cmax() as u32);
            if sys.overlay().cluster_of(peer).is_some() {
                sys.move_peer(peer, to);
            }
        }
        Op::ChurnLeave { peer } => {
            let _ = sys.apply_churn_event(net, ChurnEvent::Leave { peer: PeerId(peer) });
        }
        Op::ChurnJoin { to, doc_syms } => {
            let cluster = ClusterId(to % sys.overlay().cmax() as u32);
            let docs = doc_syms
                .into_iter()
                .map(|s| Document::new(vec![Sym(s % N_SYMS), Sym((s + 1) % N_SYMS)]))
                .collect();
            let _ = sys.apply_churn_event(net, ChurnEvent::Join { cluster, docs });
        }
        Op::ContentUpdate { peer, doc_syms } => {
            let peer = PeerId(peer % sys.overlay().n_slots() as u32);
            let docs = doc_syms
                .into_iter()
                .map(|s| Document::new(vec![Sym(s % N_SYMS), Sym((s + 2) % N_SYMS)]))
                .collect();
            sys.set_content(peer, docs);
        }
        Op::WorkloadUpdate { peer, q_syms } => {
            let peer = PeerId(peer % sys.overlay().n_slots() as u32);
            let mut w = Workload::new();
            for (k, &s) in q_syms.iter().enumerate() {
                w.add(Query::keyword(Sym(s % N_SYMS)), 1 + (k as u64 % 3));
                if k % 2 == 0 {
                    w.add(Query::new(vec![Sym(s % N_SYMS), Sym((s + 2) % N_SYMS)]), 1);
                }
            }
            sys.set_workload(peer, w);
        }
    }
}

/// Asserts the delta-maintained summaries equal the rebuild oracle.
fn assert_summaries_equal_rebuild(sys: &System) -> Result<(), TestCaseError> {
    let oracle = ClusterSummaries::build(sys.overlay(), sys.store());
    prop_assert_eq!(sys.summaries(), &oracle, "summaries drifted from rebuild");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The summary deltas match the oracle after every single op.
    #[test]
    fn summary_deltas_equal_rebuild_under_random_ops(
        docs in proptest::collection::vec(proptest::collection::vec(0u32..N_SYMS, 0..4), N_PEERS),
        queries in proptest::collection::vec(proptest::collection::vec(0u32..N_SYMS, 0..4), N_PEERS),
        ops in arb_ops(),
    ) {
        let mut sys = fixture(&docs, &queries);
        let mut net = SimNetwork::new();
        assert_summaries_equal_rebuild(&sys)?;
        for op in ops {
            apply(&mut sys, &mut net, op);
            sys.overlay().check_invariants().map_err(TestCaseError::fail)?;
            assert_summaries_equal_rebuild(&sys)?;
        }
    }

    /// Routed evaluation with exact summaries is bit-identical to flood:
    /// observations, derived pcost estimates, contribution estimates,
    /// and `ResultReturn` traffic — with no more forwards than flood.
    #[test]
    fn routed_exact_is_bit_identical_to_flood(
        docs in proptest::collection::vec(proptest::collection::vec(0u32..N_SYMS, 0..4), N_PEERS),
        queries in proptest::collection::vec(proptest::collection::vec(0u32..N_SYMS, 0..4), N_PEERS),
        ops in arb_ops(),
    ) {
        let mut sys = fixture(&docs, &queries);
        let mut churn_net = SimNetwork::new();
        for op in ops {
            apply(&mut sys, &mut churn_net, op);
        }

        let mut flood_net = SimNetwork::new();
        let flood = simulate_period(&sys, &mut flood_net);
        let mut routed_net = SimNetwork::new();
        let (routed, report) = simulate_period_routed(
            &sys,
            &mut routed_net,
            RoutingMode::Routed(SummaryMode::Exact),
        );

        prop_assert_eq!(&flood, &routed, "observations diverged");
        prop_assert_eq!(report.missed_results, 0, "exact summaries missed results");
        prop_assert_eq!(
            flood_net.messages(MsgKind::ResultReturn),
            routed_net.messages(MsgKind::ResultReturn)
        );
        prop_assert_eq!(
            flood_net.bytes(MsgKind::ResultReturn),
            routed_net.bytes(MsgKind::ResultReturn)
        );
        prop_assert!(
            routed_net.messages(MsgKind::QueryForward)
                <= flood_net.messages(MsgKind::QueryForward)
        );
        prop_assert!(report.forwards <= report.flood_forwards);

        // The derived per-peer estimates — what the strategies actually
        // consume — agree to the last bit.
        for peer in sys.overlay().peers() {
            let current = sys.overlay().cluster_of(peer);
            for cid in sys.overlay().cluster_ids() {
                prop_assert_eq!(
                    flood.estimated_pcost(&sys, peer, cid, current).to_bits(),
                    routed.estimated_pcost(&sys, peer, cid, current).to_bits(),
                    "pcost estimate for {:?} @ {:?}",
                    peer,
                    cid
                );
                prop_assert_eq!(
                    flood.estimated_contribution(peer, cid).to_bits(),
                    routed.estimated_contribution(peer, cid).to_bits()
                );
            }
        }

        // Two routed runs are themselves byte-identical (determinism).
        let mut again_net = SimNetwork::new();
        let (again, again_report) = simulate_period_routed(
            &sys,
            &mut again_net,
            RoutingMode::Routed(SummaryMode::Exact),
        );
        prop_assert_eq!(&routed, &again);
        prop_assert_eq!(report, again_report);
        prop_assert_eq!(routed_net.total_messages(), again_net.total_messages());
        prop_assert_eq!(routed_net.total_bytes(), again_net.total_bytes());
    }

    /// Lossy summaries may miss results, but never invent them, and
    /// every miss is accounted for.
    #[test]
    fn lossy_routing_accounts_for_every_missed_result(
        docs in proptest::collection::vec(proptest::collection::vec(0u32..N_SYMS, 0..4), N_PEERS),
        queries in proptest::collection::vec(proptest::collection::vec(0u32..N_SYMS, 0..4), N_PEERS),
        ops in arb_ops(),
        k in 1usize..4,
    ) {
        let mut sys = fixture(&docs, &queries);
        let mut churn_net = SimNetwork::new();
        for op in ops {
            apply(&mut sys, &mut churn_net, op);
        }

        let mut flood_net = SimNetwork::new();
        let (flood, flood_report) =
            simulate_period_routed(&sys, &mut flood_net, RoutingMode::Flood);
        let mut lossy_net = SimNetwork::new();
        let (lossy, report) = simulate_period_routed(
            &sys,
            &mut lossy_net,
            RoutingMode::Routed(SummaryMode::TopK(k)),
        );

        prop_assert_eq!(
            report.returned_results + report.missed_results,
            flood_report.returned_results,
            "unaccounted results"
        );
        let rate = report.false_negative_rate();
        prop_assert!((0.0..=1.0).contains(&rate));

        // Per-observation: lossy results are a subset of flood's.
        for peer in sys.overlay().peers() {
            for (l, f) in lossy.of(peer).iter().zip(flood.of(peer)) {
                prop_assert_eq!(&l.query, &f.query);
                prop_assert!(l.total <= f.total);
                for &(cid, n) in &l.per_cluster {
                    prop_assert!(n <= f.cluster_count(cid), "lossy invented results");
                }
            }
        }
    }
}
