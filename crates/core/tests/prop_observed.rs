//! Keystone equivalence for the observed relocation pipeline: under
//! flood routing (lossless observations) with decay disabled, after
//! *any* random mutation script,
//!
//! 1. [`ObservedStats`] is a **bitwise** snapshot of the latest
//!    [`PeriodObservations`] — every estimated `pcost` and contribution
//!    identical to the raw per-period figures down to the last float
//!    bit (the decay-0 fold replaces, it never rounds), and
//! 2. the observed selfish choice selects **exactly** the oracle
//!    [`best_response`] cluster for every live peer, under both
//!    empty-target policies — same candidate set, same tie-break, and
//! 3. [`ObservedStrategy`]'s proposals name the same destination as the
//!    oracle [`SelfishStrategy`] on the same view.
//!
//! Properties 2 and 3 hold only while every result holder is assigned
//! to a cluster: a *soft*-left peer keeps its documents in the store —
//! the oracle's recall totals still count them, but no cluster serves
//! them, so the observed picture is legitimately smaller. The
//! equivalence tests therefore strip plain `Leave`/`Join` — and content
//! updates aimed at unassigned slots — from the script (churn leaves
//! drop the leaver's documents and are kept), mirroring
//! `prop_routing`'s universe rationale.

mod common;

use common::{apply, arb_ops, arb_seed_syms, fixture, Op};
use proptest::prelude::*;
use recluster_core::System;
use recluster_core::{
    best_response, pcost, simulate_period, ObservedStats, ObservedStrategy, RelocationStrategy,
    SelfishStrategy,
};
use recluster_overlay::SimNetwork;
use recluster_types::PeerId;

/// Applies `ops` while keeping the oracle premise intact: every
/// document holder stays assigned to a cluster (see module doc).
fn apply_assigned_only(sys: &mut System, net: &mut SimNetwork, ops: Vec<Op>) {
    for op in ops {
        match &op {
            Op::Leave { .. } | Op::Join { .. } => continue,
            Op::SetContent { peer, .. } => {
                let p = PeerId(peer % sys.overlay().n_slots() as u32);
                if sys.overlay().cluster_of(p).is_none() {
                    continue;
                }
            }
            _ => {}
        }
        apply(sys, net, op);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Decay 0 is a literal snapshot: the folded estimates carry the
    /// latest period's bits, even after earlier (stale) periods were
    /// absorbed and the system mutated in between.
    #[test]
    fn decay_zero_fold_is_bitwise_the_latest_period(
        seed_docs in arb_seed_syms(),
        seed_queries in arb_seed_syms(),
        ops in arb_ops(16),
    ) {
        let mut sys = fixture(&seed_docs, &seed_queries);
        let mut net = SimNetwork::new();
        let mut stats = ObservedStats::new(0.0);

        // A stale period absorbed *before* the mutations: decay 0 must
        // forget it entirely at the next absorb.
        stats.absorb(&simulate_period(&sys, &mut net));

        for op in ops {
            apply(&mut sys, &mut net, op);
        }
        let period = simulate_period(&sys, &mut net);
        stats.absorb(&period);
        prop_assert_eq!(stats.periods_absorbed(), 2);

        for peer in sys.overlay().peers() {
            let current = sys.overlay().cluster_of(peer);
            prop_assert!(stats.covers(peer));
            for cid in sys.overlay().cluster_ids() {
                let folded = stats.estimated_pcost(&sys, peer, cid, current);
                let raw = period.estimated_pcost(&sys, peer, cid, current);
                prop_assert_eq!(
                    folded.to_bits(), raw.to_bits(),
                    "pcost({:?},{:?}) folded {} vs raw {}", peer, cid, folded, raw
                );
                let folded_c = stats.estimated_contribution(peer, cid);
                let raw_c = period.estimated_contribution(peer, cid);
                prop_assert_eq!(
                    folded_c.to_bits(), raw_c.to_bits(),
                    "contribution({:?},{:?}) folded {} vs raw {}", peer, cid, folded_c, raw_c
                );
            }
        }
    }

    /// The observed selfish choice is the oracle best response: same
    /// candidate set (non-empty clusters plus the first empty when
    /// admissible), same `COST_EPS` tie-break, so the chosen cluster is
    /// *equal*, not merely close.
    #[test]
    fn observed_selfish_choice_is_the_oracle_best_response(
        seed_docs in arb_seed_syms(),
        seed_queries in arb_seed_syms(),
        ops in arb_ops(16),
    ) {
        let mut sys = fixture(&seed_docs, &seed_queries);
        let mut net = SimNetwork::new();
        apply_assigned_only(&mut sys, &mut net, ops);
        let mut stats = ObservedStats::new(0.0);
        stats.absorb(&simulate_period(&sys, &mut net));

        let peers: Vec<_> = sys.overlay().peers().collect();
        for peer in peers {
            let current = sys.overlay().cluster_of(peer);
            for allow_empty in [true, false] {
                let (choice, est) = stats
                    .selfish_choice(&sys, peer, current, allow_empty)
                    .expect("an assigned peer always has a choice");
                let br = best_response(&sys, peer, allow_empty);
                prop_assert_eq!(
                    choice, br.cluster,
                    "{:?} allow_empty={}: observed {:?} vs oracle {:?}",
                    peer, allow_empty, choice, br.cluster
                );
                let oracle_cost = pcost(&sys, peer, br.cluster);
                prop_assert!(
                    (est - oracle_cost).abs() < 1e-9,
                    "{:?}: estimated {} vs oracle {}", peer, est, oracle_cost
                );
            }
        }
    }

    /// The strategy adapter end-to-end: observed selfish proposals name
    /// the oracle destination (or both abstain) on the same view.
    #[test]
    fn observed_strategy_proposals_match_the_oracle(
        seed_docs in arb_seed_syms(),
        seed_queries in arb_seed_syms(),
        ops in arb_ops(16),
    ) {
        let mut sys = fixture(&seed_docs, &seed_queries);
        let mut net = SimNetwork::new();
        apply_assigned_only(&mut sys, &mut net, ops);
        let mut stats = ObservedStats::new(0.0);
        stats.absorb(&simulate_period(&sys, &mut net));

        let observed = ObservedStrategy::selfish(&stats);
        let oracle = SelfishStrategy;
        let view = sys.view();
        for peer in view.overlay().peers() {
            for allow_empty in [true, false] {
                let want = oracle.propose(&view, peer, allow_empty);
                let got = observed.propose(&view, peer, allow_empty);
                prop_assert_eq!(
                    want.map(|p| p.to), got.map(|p| p.to),
                    "{:?} allow_empty={}: oracle {:?} vs observed {:?}",
                    peer, allow_empty, want, got
                );
                if let (Some(w), Some(g)) = (want, got) {
                    prop_assert!(
                        (w.gain - g.gain).abs() < 1e-9,
                        "{:?}: gains {} vs {}", peer, w.gain, g.gain
                    );
                }
            }
        }
    }
}
