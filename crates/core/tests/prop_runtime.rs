//! Keystone equivalence suite for the typed-message runtime: after
//! *any* random interleaving of membership changes, churn events,
//! content updates and workload updates (the shared mutation-script
//! universe of `common/mod.rs`), a [`RuntimeEngine`] over the
//! degenerate schedule — [`NetConfig::ideal`]: zero extra delay, zero
//! loss — produces **bit-identical** output to the legacy
//! [`ProtocolEngine`]:
//!
//! * every [`RoundOutcome`] field — forwarded requests, granted moves,
//!   `scost`/`wcost` bits, cluster count, proposal counters — round for
//!   round,
//! * the final cluster membership of every peer, and
//! * the message counts the two drivers account identically
//!   (gain reports, relocation requests, representative heartbeats).
//!
//! This is what makes the sync engine "one driver" of the runtime API
//! rather than a second implementation of the protocol: the two share
//! the policy arithmetic (`crate::protocol::apply_policy`), and this
//! suite pins everything they don't share — collection, selection,
//! locking, commit application — across strategies and configs.

mod common;

use common::{apply, arb_ops, arb_seed_syms, fixture};
use proptest::prelude::*;
use recluster_core::{
    AltruisticStrategy, EmptyTargetPolicy, NetConfig, ProtocolConfig, ProtocolEngine,
    RelocationRequest, RelocationStrategy, RoundOutcome, RuntimeEngine, SelfishStrategy, System,
};
use recluster_overlay::{MsgKind, SimNetwork};
use recluster_types::PeerId;

/// Bit-comparable form of a request.
fn req_bits(r: &RelocationRequest) -> (u32, u32, u32, u64) {
    (r.src.0, r.dst.0, r.peer.0, r.gain.to_bits())
}

/// Bit-comparable form of a round.
#[allow(clippy::type_complexity)]
fn round_bits(
    r: &RoundOutcome,
) -> (
    usize,
    Vec<(u32, u32, u32, u64)>,
    Vec<(u32, u32, u32, u64)>,
    u64,
    u64,
    usize,
    usize,
    usize,
) {
    (
        r.round,
        r.requests.iter().map(req_bits).collect(),
        r.granted.iter().map(req_bits).collect(),
        r.scost.to_bits(),
        r.wcost.to_bits(),
        r.non_empty_clusters,
        r.proposals_recomputed,
        r.proposals_memoized,
    )
}

fn arb_config() -> impl Strategy<Value = ProtocolConfig> {
    let policy = prop_oneof![
        Just(EmptyTargetPolicy::Always),
        Just(EmptyTargetPolicy::Never),
        Just(EmptyTargetPolicy::OnCostIncrease(0.05)),
    ];
    let epsilon = prop_oneof![Just(1e-3), Just(0.05)];
    let locks = prop_oneof![Just(true), Just(false)];
    (policy, epsilon, locks).prop_map(|(policy, epsilon, use_locks)| {
        ProtocolConfig::builder()
            .empty_targets(policy)
            .epsilon(epsilon)
            .use_locks(use_locks)
            // The runtime computes every proposal fresh each round; the
            // sync engine's memo is bit-identical either way, but the
            // *counters* it reports are not — pin them off.
            .memoize(false)
            .max_rounds(40)
            .build()
    })
}

/// Builds the mutated system twice (the interpreter is deterministic),
/// runs the sync engine on one copy and the ideal-schedule runtime on
/// the other, and compares everything bitwise.
fn assert_equivalent<S, F>(
    seed_docs: &[Vec<u32>],
    seed_queries: &[Vec<u32>],
    ops: &[common::Op],
    config: ProtocolConfig,
    make: F,
) -> Result<(), TestCaseError>
where
    S: RelocationStrategy,
    F: Fn() -> S,
{
    let build = |ops: &[common::Op]| -> System {
        let mut sys = fixture(seed_docs, seed_queries);
        let mut net = SimNetwork::new();
        for op in ops {
            apply(&mut sys, &mut net, op.clone());
        }
        sys
    };
    let mut sys_sync = build(ops);
    let mut sys_rt = build(ops);
    let mut net_sync = SimNetwork::new();
    let mut net_rt = SimNetwork::new();

    let mut sync = ProtocolEngine::new(make(), config);
    let mut runtime = RuntimeEngine::new(make(), config, NetConfig::ideal());
    let a = sync.run(&mut sys_sync, &mut net_sync);
    let b = runtime.run(&mut sys_rt, &mut net_rt);

    prop_assert_eq!(a.converged, b.converged);
    prop_assert_eq!(a.rounds.len(), b.rounds.len());
    for (ra, rb) in a.rounds.iter().zip(&b.rounds) {
        prop_assert_eq!(round_bits(ra), round_bits(rb));
    }
    for i in 0..sys_sync.overlay().n_slots() {
        let p = PeerId::from_index(i);
        prop_assert_eq!(
            sys_sync.overlay().cluster_of(p),
            sys_rt.overlay().cluster_of(p),
            "final membership diverged for {:?}",
            p
        );
    }
    // The charges both drivers define identically: one gain report per
    // member per round, one request to each other representative per
    // forwarding cluster, one heartbeat to each other representative
    // per requestless cluster. (Grant-side accounting intentionally
    // differs: the runtime charges real Grant/Deny/Commit frames.)
    for kind in [
        MsgKind::GainReport,
        MsgKind::RelocationRequest,
        MsgKind::Heartbeat,
    ] {
        prop_assert_eq!(
            net_sync.messages(kind),
            net_rt.messages(kind),
            "message count diverged for {:?}",
            kind
        );
    }
    // No fabric pathology under the degenerate schedule.
    let stats = runtime.net_stats();
    prop_assert_eq!(stats.dropped, 0);
    prop_assert_eq!(stats.stale, 0);
    prop_assert_eq!(stats.sent, stats.delivered);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Selfish strategy, every config corner of the shared universe.
    #[test]
    fn runtime_ideal_schedule_is_bit_identical_to_sync_selfish(
        seed_docs in arb_seed_syms(),
        seed_queries in arb_seed_syms(),
        ops in arb_ops(40),
        config in arb_config(),
    ) {
        assert_equivalent(&seed_docs, &seed_queries, &ops, config, || SelfishStrategy)?;
    }

    /// Altruistic strategy: exercises `prepare`-computed round state
    /// (the contribution matrix) flowing through both drivers.
    #[test]
    fn runtime_ideal_schedule_is_bit_identical_to_sync_altruistic(
        seed_docs in arb_seed_syms(),
        seed_queries in arb_seed_syms(),
        ops in arb_ops(30),
        config in arb_config(),
    ) {
        assert_equivalent(&seed_docs, &seed_queries, &ops, config, AltruisticStrategy::new)?;
    }
}
