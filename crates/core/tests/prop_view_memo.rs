//! Equivalence suite for the read/write split and the proposal memo:
//! after *any* random interleaving of membership changes, churn events,
//! content updates and workload updates,
//!
//! 1. every cost read through a [`SystemView`] — `pcost`, `pcost_current`,
//!    `best_response`, `scost`, `wcost` — is **bit-identical** to the
//!    same read through `&System` (the `RefCell`-backed lazy route), and
//! 2. a [`ProposalMemo`] lookup that reports *valid* re-emits a proposal
//!    bit-identical to a fresh `best_response` — the soundness of the
//!    epoch/mark validity gate under every mutation class.
//!
//! Together these are the contract that lets the protocol engine flush
//! the cache once per round, shard phase 1 across threads, and skip
//! recomputation for epoch-clean peers without ever changing a byte of
//! protocol output.

mod common;

use common::{apply, arb_ops, arb_seed_syms, fixture};
use proptest::prelude::*;
use recluster_core::{
    best_response, pcost, pcost_current, scost, wcost, Proposal, ProposalMemo, RelocationStrategy,
    SelfishStrategy, System,
};
use recluster_overlay::SimNetwork;
use recluster_types::{ClusterId, PeerId};

/// Bit-comparable form of a proposal.
fn bits(p: Option<Proposal>) -> Option<(u32, u64)> {
    p.map(|p| (p.to.0, p.gain.to_bits()))
}

/// Every cost read through the view equals the `&System` route, bitwise.
fn assert_view_equals_system(sys: &mut System) -> Result<(), TestCaseError> {
    let peers: Vec<PeerId> = sys.overlay().peers().collect();
    let cids: Vec<ClusterId> = sys.overlay().cluster_ids().collect();

    // System-side reads first (they flush the RefCell-backed cache).
    let sys_scost = scost(&*sys).to_bits();
    let sys_wcost = wcost(&*sys).to_bits();
    let mut sys_pcosts = Vec::new();
    let mut sys_current = Vec::new();
    let mut sys_br = Vec::new();
    for &p in &peers {
        sys_current.push(pcost_current(&*sys, p).to_bits());
        let br = best_response(&*sys, p, true);
        sys_br.push((br.cluster, br.gain.to_bits()));
        for &c in &cids {
            sys_pcosts.push(pcost(&*sys, p, c).to_bits());
        }
    }

    // The same reads through one snapshot.
    let view = sys.view();
    prop_assert!(view.cost_cache().is_fresh());
    prop_assert_eq!(sys_scost, scost(&view).to_bits(), "scost");
    prop_assert_eq!(sys_wcost, wcost(&view).to_bits(), "wcost");
    let mut k = 0;
    for (i, &p) in peers.iter().enumerate() {
        prop_assert_eq!(
            sys_current[i],
            pcost_current(&view, p).to_bits(),
            "pcost_current({})",
            p
        );
        let br = best_response(&view, p, true);
        prop_assert_eq!(sys_br[i].0, br.cluster, "best cluster of {}", p);
        prop_assert_eq!(sys_br[i].1, br.gain.to_bits(), "best gain of {}", p);
        for &c in &cids {
            prop_assert_eq!(
                sys_pcosts[k],
                pcost(&view, p, c).to_bits(),
                "pcost({p},{c})"
            );
            k += 1;
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Property 1: `SystemView` cost reads are bit-equal to `System`'s
    /// after every op of a random mutation script.
    #[test]
    fn view_reads_equal_system_reads_under_random_ops(
        docs in arb_seed_syms(),
        queries in arb_seed_syms(),
        ops in arb_ops(30),
    ) {
        let mut sys = fixture(&docs, &queries);
        let mut net = SimNetwork::new();
        assert_view_equals_system(&mut sys)?;
        for op in ops {
            apply(&mut sys, &mut net, op);
            assert_view_equals_system(&mut sys)?;
        }
    }

    /// Property 2 (memo soundness): whenever the per-(peer, cluster)
    /// validity gate accepts a memoized proposal, that proposal is
    /// bit-identical to a fresh `best_response` — under arbitrary
    /// interleavings of every mutation class, driven with exactly the
    /// protocol engine's round discipline: one `begin_round` per op,
    /// every live peer looked up, every miss recomputed-and-stored
    /// (hits are deliberately *not* re-stored — the gate's induction
    /// must carry them across rounds on its own).
    #[test]
    fn valid_memo_hits_equal_fresh_best_response(
        docs in arb_seed_syms(),
        queries in arb_seed_syms(),
        ops in arb_ops(30),
    ) {
        let mut sys = fixture(&docs, &queries);
        let mut net = SimNetwork::new();
        let mut memo = ProposalMemo::new();
        let mut hits = 0usize;
        let mut checks = 0usize;

        // Round 0: seed the memo with every live peer's proposal.
        {
            let view = sys.view();
            memo.begin_round(&view, true);
            let peers: Vec<PeerId> = view.overlay().peers().collect();
            for p in peers {
                let (fresh, chain) = SelfishStrategy.propose_traced(&view, p, true);
                memo.store(&view, p, true, fresh, chain);
            }
        }

        for op in ops {
            apply(&mut sys, &mut net, op);
            let view = sys.view();
            memo.begin_round(&view, true);
            let peers: Vec<PeerId> = view.overlay().peers().collect();
            for &p in &peers {
                let (fresh, chain) = SelfishStrategy.propose_traced(&view, p, true);
                match memo.lookup(&view, p) {
                    Some(hit) => {
                        hits += 1;
                        prop_assert_eq!(
                            bits(hit),
                            bits(fresh),
                            "stale memo accepted for {} after gate said valid",
                            p
                        );
                    }
                    None => memo.store(&view, p, true, fresh, chain),
                }
                checks += 1;
            }
        }
        // Not a correctness requirement, but keep the test honest: the
        // sum over many cases must exercise both branches. (A single
        // case may legitimately see zero hits.)
        let _ = (hits, checks);
    }
}
