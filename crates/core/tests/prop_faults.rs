//! Fault-tolerance property suite for the typed-message runtime: under
//! *arbitrary* timed partitions, crash/restart windows and mid-round
//! churn — layered on the shared mutation-script universe of
//! `common/mod.rs` — the runtime keeps three promises:
//!
//! * **Determinism**: the same seeds, schedule and script replay
//!   bit-identically, round for round, counter for counter — faults
//!   included.
//! * **RNG transparency**: attaching an *empty* fault schedule changes
//!   nothing. Fault checks run before any RNG draw, so the fabric's
//!   delay/drop stream is byte-identical with and without the feature.
//! * **Commit integrity**: without churn, the evidence log *is* the
//!   membership story — replaying its records from the initial overlay
//!   reproduces the final assignment exactly (every commit applied
//!   once, from the cluster the frame names, never out of order); with
//!   churn, a departed peer stays gone (no late commit resurrects it).

mod common;

use common::{apply, arb_ops, arb_seed_syms, fixture, N_PEERS, N_SYMS};
use proptest::prelude::*;
use recluster_core::{
    CrashWindow, DelayDist, FaultSchedule, NetConfig, Partition, PartitionKind, ProtocolConfig,
    RoundOutcome, RuntimeChurn, RuntimeEngine, SelfishStrategy, System,
};
use recluster_overlay::SimNetwork;
use recluster_types::{ClusterId, Document, PeerId, Query, Sym, Workload};

fn config() -> ProtocolConfig {
    ProtocolConfig::builder()
        .max_rounds(12)
        .memoize(false)
        .build()
}

/// One relocation request as raw bits: (src, dst, peer, gain bits).
type RequestBits = (u32, u32, u32, u64);

/// Bit-comparable form of a round (the runtime has no memo counters
/// worth pinning here; requests and grants carry the gain bits).
fn round_bits(r: &RoundOutcome) -> (usize, Vec<RequestBits>, Vec<RequestBits>, u64) {
    let req = |rs: &[recluster_core::RelocationRequest]| {
        rs.iter()
            .map(|r| (r.src.0, r.dst.0, r.peer.0, r.gain.to_bits()))
            .collect()
    };
    (
        r.round,
        req(&r.requests),
        req(&r.granted),
        r.scost.to_bits(),
    )
}

/// An arbitrary fault schedule: up to two timed partitions (bisections
/// at any pivot, isolations of any peer) and up to two crash windows,
/// anywhere in the first ~100 ticks.
fn arb_faults() -> impl Strategy<Value = FaultSchedule> {
    let kind = prop_oneof![
        (0u32..N_PEERS as u32 + 2).prop_map(|pivot| PartitionKind::Bisect { pivot }),
        (0u32..N_PEERS as u32).prop_map(|p| PartitionKind::Isolate { peer: PeerId(p) }),
    ];
    let partition = (kind, 0u64..80, 1u64..60).prop_map(|(kind, start, len)| Partition {
        kind,
        start,
        heal: start + len,
    });
    let crash = (0u32..N_PEERS as u32, 0u64..80, 1u64..60).prop_map(|(p, down, len)| CrashWindow {
        peer: PeerId(p),
        down,
        up: down + len,
    });
    (
        proptest::collection::vec(partition, 0..3),
        proptest::collection::vec(crash, 0..3),
    )
        .prop_map(|(partitions, crashes)| FaultSchedule {
            partitions,
            crashes,
        })
}

/// An arbitrary mid-round churn schedule: departures and arrivals at
/// arbitrary ticks. Arrivals target the fixture's initial clusters.
fn arb_churn() -> impl Strategy<Value = Vec<(u64, RuntimeChurn)>> {
    let depart = (0u64..60, 0u32..N_PEERS as u32)
        .prop_map(|(tick, p)| (tick, RuntimeChurn::Depart { peer: PeerId(p) }));
    let arrive = (0u64..60, 0u32..(N_PEERS / 2) as u32, 0u32..N_SYMS).prop_map(|(tick, c, s)| {
        let mut workload = Workload::new();
        workload.add(Query::keyword(Sym((s + 1) % N_SYMS)), 2);
        (
            tick,
            RuntimeChurn::Arrive {
                cluster: ClusterId(c),
                docs: vec![Document::new(vec![Sym(s)])],
                workload,
            },
        )
    });
    proptest::collection::vec(prop_oneof![depart, arrive], 0..4)
}

/// Degraded-but-bounded schedules: enough delay and loss to scramble
/// rounds, phase deadlines still long enough to terminate.
fn arb_net() -> impl Strategy<Value = NetConfig> {
    (
        0u64..1000,
        0u64..4,
        prop_oneof![Just(0.0), Just(0.1), Just(0.3)],
    )
        .prop_map(|(seed, max_delay, drop_rate)| NetConfig {
            seed,
            delay: if max_delay == 0 {
                DelayDist::Fixed(0)
            } else {
                DelayDist::Uniform {
                    min: 0,
                    max: max_delay,
                }
            },
            drop_rate,
            phase_ticks: max_delay + 2,
        })
}

fn build(seed_docs: &[Vec<u32>], seed_queries: &[Vec<u32>], ops: &[common::Op]) -> System {
    let mut sys = fixture(seed_docs, seed_queries);
    let mut net = SimNetwork::new();
    for op in ops {
        apply(&mut sys, &mut net, op.clone());
    }
    sys
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The same seeds, fault schedule and churn replay bit-identically:
    /// every round's requests/grants/scost bits, the final membership
    /// of every slot, and the full loss-attribution ledger.
    #[test]
    fn runtime_replays_bit_identically_under_faults(
        seed_docs in arb_seed_syms(),
        seed_queries in arb_seed_syms(),
        ops in arb_ops(25),
        faults in arb_faults(),
        churn in arb_churn(),
        net in arb_net(),
    ) {
        let run = || {
            let mut sys = build(&seed_docs, &seed_queries, &ops);
            let mut ledger = SimNetwork::new();
            let mut engine = RuntimeEngine::new(SelfishStrategy, config(), net)
                .with_faults(faults.clone())
                .with_churn(churn.clone());
            let outcome = engine.run(&mut sys, &mut ledger);
            let membership: Vec<_> = (0..sys.overlay().n_slots())
                .map(|i| sys.overlay().cluster_of(PeerId::from_index(i)))
                .collect();
            (outcome, engine.net_stats(), membership)
        };
        let (a, stats_a, members_a) = run();
        let (b, stats_b, members_b) = run();
        prop_assert_eq!(a.converged, b.converged);
        prop_assert_eq!(a.rounds.len(), b.rounds.len());
        for (ra, rb) in a.rounds.iter().zip(&b.rounds) {
            prop_assert_eq!(round_bits(ra), round_bits(rb));
        }
        prop_assert_eq!(stats_a, stats_b);
        prop_assert_eq!(members_a, members_b);
    }

    /// An explicitly empty fault schedule is invisible: the fault
    /// checks run before any RNG draw, so the delay/drop stream — and
    /// with it every round and every counter — stays byte-identical.
    #[test]
    fn empty_fault_schedule_is_rng_transparent(
        seed_docs in arb_seed_syms(),
        seed_queries in arb_seed_syms(),
        ops in arb_ops(25),
        net in arb_net(),
    ) {
        let run = |attach_empty_schedule: bool| {
            let mut sys = build(&seed_docs, &seed_queries, &ops);
            let mut ledger = SimNetwork::new();
            let mut engine = RuntimeEngine::new(SelfishStrategy, config(), net);
            if attach_empty_schedule {
                engine = engine.with_faults(FaultSchedule::none());
            }
            let outcome = engine.run(&mut sys, &mut ledger);
            (outcome.rounds.iter().map(round_bits).collect::<Vec<_>>(), engine.net_stats())
        };
        prop_assert_eq!(run(true), run(false));
    }

    /// Without churn, commits are the *only* membership mutations: the
    /// evidence log replayed from the initial overlay reproduces the
    /// final assignment exactly. Every record leaves the cluster it
    /// names (so no commit is applied twice, out of order, or from
    /// evicted state), and no `(round, peer)` repeats.
    #[test]
    fn evidence_log_replays_to_the_final_membership(
        seed_docs in arb_seed_syms(),
        seed_queries in arb_seed_syms(),
        ops in arb_ops(25),
        faults in arb_faults(),
        net in arb_net(),
    ) {
        let mut sys = build(&seed_docs, &seed_queries, &ops);
        let mut current: Vec<Option<ClusterId>> = (0..sys.overlay().n_slots())
            .map(|i| sys.overlay().cluster_of(PeerId::from_index(i)))
            .collect();
        let mut ledger = SimNetwork::new();
        let mut engine = RuntimeEngine::new(SelfishStrategy, config(), net)
            .with_faults(faults);
        engine.run(&mut sys, &mut ledger);
        let mut seen = std::collections::BTreeSet::new();
        for rec in engine.evidence().records() {
            prop_assert!(
                seen.insert((rec.round, rec.peer)),
                "peer {:?} committed twice in round {}", rec.peer, rec.round
            );
            prop_assert_eq!(
                current[rec.peer.index()], Some(rec.from),
                "commit for {:?} does not leave the cluster it names", rec.peer
            );
            current[rec.peer.index()] = Some(rec.to);
        }
        for (i, &cid) in current.iter().enumerate() {
            prop_assert_eq!(
                cid,
                sys.overlay().cluster_of(PeerId::from_index(i)),
                "evidence replay diverged from the overlay at slot {}", i
            );
        }
    }

    /// A departed peer stays gone: no grant issued before the departure
    /// and no commit frame in flight may resurrect its membership.
    #[test]
    fn departed_peers_stay_departed(
        seed_docs in arb_seed_syms(),
        seed_queries in arb_seed_syms(),
        ops in arb_ops(25),
        faults in arb_faults(),
        churn in arb_churn(),
        net in arb_net(),
    ) {
        let mut sys = build(&seed_docs, &seed_queries, &ops);
        let mut ledger = SimNetwork::new();
        let mut engine = RuntimeEngine::new(SelfishStrategy, config(), net)
            .with_faults(faults)
            .with_churn(churn.clone());
        engine.run(&mut sys, &mut ledger);
        for (tick, event) in &churn {
            if let RuntimeChurn::Depart { peer } = event {
                if *tick <= engine.now() {
                    prop_assert_eq!(
                        sys.overlay().cluster_of(*peer),
                        None,
                        "departed peer {:?} is back in the overlay", peer
                    );
                }
            }
        }
    }
}
