//! Random relocation: the null baseline.
//!
//! Peers relocate to uniformly random clusters with a fixed probability,
//! ignoring costs entirely. Any gain-driven strategy must beat this to
//! claim its signal matters. The reported "gain" is a constant so the
//! protocol's ranking and `ε` threshold remain well defined.

use std::sync::Mutex;

use recluster_core::{Proposal, RelocationStrategy, SystemView};
use recluster_types::{ClusterId, PeerId};

/// A strategy that proposes uniformly random moves with probability
/// `move_prob`, using an internal deterministic PRNG stream.
#[derive(Debug)]
pub struct RandomStrategy {
    move_prob: f64,
    /// The PRNG stream. `RelocationStrategy` requires `Sync`, so the
    /// interior mutability lives behind a `Mutex` — but the stream is
    /// only deterministic when `propose` calls happen in peer order,
    /// which is why [`RandomStrategy`] opts out of phase-1 sharding
    /// (`sharded_phase1` = false): the engine then never contends on
    /// this lock.
    state: Mutex<u64>,
}

impl RandomStrategy {
    /// Creates a random strategy.
    ///
    /// # Panics
    /// Panics if `move_prob` is outside `[0, 1]`.
    pub fn new(move_prob: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&move_prob),
            "move_prob must be in [0, 1]"
        );
        RandomStrategy {
            move_prob,
            state: Mutex::new(seed | 1),
        }
    }

    /// SplitMix64 step over the interior state (the trait's `propose`
    /// takes `&self`, so the stream lives behind the `Sync` cell).
    fn next_u64(&self) -> u64 {
        let mut state = self.state.lock().expect("PRNG lock poisoned");
        let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        *state = z;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl RelocationStrategy for RandomStrategy {
    fn name(&self) -> &'static str {
        "random"
    }

    fn propose(&self, view: &SystemView<'_>, peer: PeerId, allow_empty: bool) -> Option<Proposal> {
        if self.next_f64() >= self.move_prob {
            return None;
        }
        let current = view.overlay().cluster_of(peer)?;
        let candidates: Vec<ClusterId> = view
            .overlay()
            .cluster_ids()
            .filter(|&c| c != current && (allow_empty || !view.overlay().cluster(c).is_empty()))
            .collect();
        if candidates.is_empty() {
            return None;
        }
        let to = candidates[(self.next_u64() % candidates.len() as u64) as usize];
        Some(Proposal { to, gain: 1.0 })
    }

    /// The proposal stream is stateful: each call advances the PRNG, so
    /// byte-identical runs require the engine to keep phase-1 calls in
    /// sequential peer order.
    fn sharded_phase1(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recluster_core::{GameConfig, System};
    use recluster_overlay::{ContentStore, Overlay};
    use recluster_types::Workload;

    fn sys(n: usize) -> System {
        System::new(
            Overlay::singletons(n),
            ContentStore::new(n),
            vec![Workload::new(); n],
            GameConfig::default(),
        )
    }

    #[test]
    fn zero_probability_never_moves() {
        let s = RandomStrategy::new(0.0, 1);
        let mut system = sys(4);
        let view = system.view();
        for i in 0..4 {
            assert!(s.propose(&view, PeerId(i), true).is_none());
        }
    }

    #[test]
    fn certain_probability_always_proposes() {
        let s = RandomStrategy::new(1.0, 1);
        let mut system = sys(4);
        let view = system.view();
        for i in 0..4 {
            let p = s.propose(&view, PeerId(i), true).unwrap();
            assert_ne!(Some(p.to), view.overlay().cluster_of(PeerId(i)));
        }
    }

    #[test]
    fn respects_allow_empty() {
        // Two peers in one cluster; all other clusters empty.
        let mut system = sys(3);
        system.move_peer(PeerId(1), ClusterId(0));
        system.move_peer(PeerId(2), ClusterId(0));
        let s = RandomStrategy::new(1.0, 2);
        // Only empty clusters exist as alternatives → None when barred.
        let view = system.view();
        assert!(s.propose(&view, PeerId(0), false).is_none());
        assert!(s.propose(&view, PeerId(0), true).is_some());
    }

    #[test]
    fn stream_is_deterministic() {
        let run = |seed| {
            let s = RandomStrategy::new(0.5, seed);
            let mut system = sys(6);
            let view = system.view();
            (0..6u32)
                .map(|i| s.propose(&view, PeerId(i), true).map(|p| p.to))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    #[should_panic(expected = "move_prob must be in [0, 1]")]
    fn bad_probability_panics() {
        let _ = RandomStrategy::new(1.5, 0);
    }
}
