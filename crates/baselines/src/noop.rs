//! The no-maintenance baseline.
//!
//! Never proposes a move. Running the protocol with this strategy costs
//! only heartbeat traffic and leaves the overlay exactly as the updates
//! degraded it — the lower bound every maintenance scheme is measured
//! against.

use recluster_core::{Proposal, RelocationStrategy, SystemView};
use recluster_types::PeerId;

/// A strategy that never relocates anyone.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoMaintenance;

impl RelocationStrategy for NoMaintenance {
    fn name(&self) -> &'static str {
        "none"
    }

    fn propose(
        &self,
        _view: &SystemView<'_>,
        _peer: PeerId,
        _allow_empty: bool,
    ) -> Option<Proposal> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recluster_core::{GameConfig, ProtocolConfig, ProtocolEngine, System};
    use recluster_overlay::{ContentStore, Overlay, SimNetwork};
    use recluster_types::Workload;

    #[test]
    fn never_proposes() {
        let mut sys = System::new(
            Overlay::singletons(3),
            ContentStore::new(3),
            vec![Workload::new(); 3],
            GameConfig::default(),
        );
        let view = sys.view();
        for i in 0..3 {
            assert!(NoMaintenance.propose(&view, PeerId(i), true).is_none());
        }
    }

    #[test]
    fn protocol_terminates_immediately_with_overlay_untouched() {
        let mut sys = System::new(
            Overlay::singletons(4),
            ContentStore::new(4),
            vec![Workload::new(); 4],
            GameConfig::default(),
        );
        let before = sys.overlay().clone();
        let mut net = SimNetwork::new();
        let mut engine = ProtocolEngine::new(NoMaintenance, ProtocolConfig::default());
        let outcome = engine.run(&mut sys, &mut net);
        assert!(outcome.converged);
        assert_eq!(outcome.rounds_to_converge(), 0);
        assert_eq!(sys.overlay(), &before);
    }
}
