//! Baseline comparators for the reformulation protocol.
//!
//! The paper motivates local, game-driven maintenance against the obvious
//! alternative: "re-apply the clustering procedure that was used to form
//! the original overlay from scratch […] However, this incurs large
//! communication costs. It also requires global knowledge about the
//! system state" (§1). This crate provides that strawman and two null
//! baselines so the claim can be measured:
//!
//! * [`profiles`] — per-peer term-frequency profiles and cosine
//!   similarity (the feature space for content clustering).
//! * [`kmeans`] — centralized k-means re-clustering from scratch with
//!   global-knowledge message accounting.
//! * [`random_walk`] — a random-relocation strategy (null hypothesis for
//!   the gain-driven strategies).
//! * [`noop`] — no maintenance at all (the "do nothing" lower bound).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kmeans;
pub mod noop;
pub mod profiles;
pub mod random_walk;

pub use kmeans::{recluster_kmeans, KMeansConfig, KMeansOutcome};
pub use noop::NoMaintenance;
pub use profiles::{cosine, peer_profile, PeerProfile};
pub use random_walk::RandomStrategy;
