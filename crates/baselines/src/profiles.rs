//! Peer content profiles.
//!
//! The global re-clustering baseline needs a feature space: each peer is
//! summarized by a sparse term-frequency vector over the attribute
//! vocabulary (document frequency of each attribute in the peer's
//! store), compared with cosine similarity — the standard representation
//! the semantic-overlay literature cited by the paper uses.

use recluster_overlay::ContentStore;
use recluster_types::{PeerId, Sym};

/// A sparse, L2-normalizable term-frequency profile: sorted
/// `(attribute, count)` pairs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PeerProfile {
    /// Sorted `(attribute, weight)` entries.
    pub entries: Vec<(Sym, f64)>,
}

impl PeerProfile {
    /// The L2 norm.
    pub fn norm(&self) -> f64 {
        self.entries.iter().map(|&(_, w)| w * w).sum::<f64>().sqrt()
    }

    /// Number of nonzero dimensions.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Approximate wire size in bytes (for message accounting).
    pub fn wire_bytes(&self) -> u64 {
        (self.entries.len() * 12) as u64
    }
}

/// Builds the profile of one peer: for every attribute, the number of
/// the peer's documents containing it.
pub fn peer_profile(store: &ContentStore, peer: PeerId) -> PeerProfile {
    let mut counts: std::collections::BTreeMap<Sym, f64> = std::collections::BTreeMap::new();
    for doc in store.docs(peer) {
        for &attr in doc.attrs() {
            *counts.entry(attr).or_insert(0.0) += 1.0;
        }
    }
    PeerProfile {
        entries: counts.into_iter().collect(),
    }
}

/// Cosine similarity between two sparse profiles; zero if either is
/// empty.
pub fn cosine(a: &PeerProfile, b: &PeerProfile) -> f64 {
    let (na, nb) = (a.norm(), b.norm());
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    let mut dot = 0.0;
    let (mut i, mut j) = (0, 0);
    while i < a.entries.len() && j < b.entries.len() {
        match a.entries[i].0.cmp(&b.entries[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                dot += a.entries[i].1 * b.entries[j].1;
                i += 1;
                j += 1;
            }
        }
    }
    dot / (na * nb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use recluster_types::Document;

    fn store_with(docs: &[&[u32]]) -> ContentStore {
        let mut store = ContentStore::new(1);
        for d in docs {
            store.add(
                PeerId(0),
                Document::new(d.iter().map(|&i| Sym(i)).collect()),
            );
        }
        store
    }

    #[test]
    fn profile_counts_document_frequency() {
        let store = store_with(&[&[1, 2], &[1, 3], &[1]]);
        let p = peer_profile(&store, PeerId(0));
        assert_eq!(p.entries, vec![(Sym(1), 3.0), (Sym(2), 1.0), (Sym(3), 1.0)]);
        assert_eq!(p.nnz(), 3);
    }

    #[test]
    fn cosine_of_identical_profiles_is_one() {
        let store = store_with(&[&[1, 2], &[2, 3]]);
        let p = peer_profile(&store, PeerId(0));
        assert!((cosine(&p, &p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_of_disjoint_profiles_is_zero() {
        let a = PeerProfile {
            entries: vec![(Sym(1), 2.0)],
        };
        let b = PeerProfile {
            entries: vec![(Sym(2), 3.0)],
        };
        assert_eq!(cosine(&a, &b), 0.0);
    }

    #[test]
    fn cosine_handles_empty_profiles() {
        let empty = PeerProfile::default();
        let full = PeerProfile {
            entries: vec![(Sym(1), 1.0)],
        };
        assert_eq!(cosine(&empty, &full), 0.0);
        assert_eq!(cosine(&empty, &empty), 0.0);
    }

    #[test]
    fn cosine_is_symmetric_and_bounded() {
        let a = PeerProfile {
            entries: vec![(Sym(1), 1.0), (Sym(2), 2.0), (Sym(5), 1.0)],
        };
        let b = PeerProfile {
            entries: vec![(Sym(2), 1.0), (Sym(5), 4.0), (Sym(9), 1.0)],
        };
        let ab = cosine(&a, &b);
        let ba = cosine(&b, &a);
        assert!((ab - ba).abs() < 1e-12);
        assert!((0.0..=1.0 + 1e-12).contains(&ab));
    }

    #[test]
    fn wire_bytes_scales_with_nnz() {
        let p = PeerProfile {
            entries: vec![(Sym(1), 1.0), (Sym(2), 1.0)],
        };
        assert_eq!(p.wire_bytes(), 24);
    }
}
