//! Centralized re-clustering from scratch (the paper's §1 strawman).
//!
//! A coordinator collects every peer's content profile (global
//! knowledge), runs spherical k-means with deterministic farthest-point
//! seeding, and broadcasts the new assignment. The message ledger records
//! the full cost of this approach: `|P|` profile uploads plus `|P|`
//! assignment downloads per invocation — the communication the local
//! protocol avoids.

use rand::Rng;
use recluster_core::System;
use recluster_overlay::{MsgKind, SimNetwork};
use recluster_types::{seeded_rng, ClusterId, PeerId};

use crate::profiles::{cosine, peer_profile, PeerProfile};

/// Configuration for the re-clustering baseline.
#[derive(Debug, Clone, Copy)]
pub struct KMeansConfig {
    /// Number of clusters to form.
    pub k: usize,
    /// Iteration budget.
    pub max_iters: usize,
    /// Seed for the initial centroid choice.
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig {
            k: 10,
            max_iters: 50,
            seed: 7,
        }
    }
}

/// The result of one global re-clustering.
#[derive(Debug, Clone)]
pub struct KMeansOutcome {
    /// Final cluster index per live peer (positions follow peer ids; the
    /// entry for a departed peer is `usize::MAX`).
    pub assignments: Vec<usize>,
    /// Iterations executed.
    pub iterations: usize,
    /// Whether assignment reached a fixed point within the budget.
    pub converged: bool,
}

/// Re-clusters the whole system from scratch, *overwriting* the overlay's
/// assignment: peers with cluster index `i` land in cluster slot `i`.
///
/// # Panics
/// Panics if `k` is zero or exceeds the overlay's `Cmax`.
pub fn recluster_kmeans(
    system: &mut System,
    config: KMeansConfig,
    net: &mut SimNetwork,
) -> KMeansOutcome {
    assert!(config.k > 0, "k must be positive");
    assert!(
        config.k <= system.overlay().cmax(),
        "k exceeds the cluster-slot budget Cmax"
    );

    let peers: Vec<PeerId> = system.overlay().peers().collect();
    let profiles: Vec<PeerProfile> = peers
        .iter()
        .map(|&p| {
            let prof = peer_profile(system.store(), p);
            // Profile upload to the coordinator.
            net.send(MsgKind::GlobalBroadcast, prof.wire_bytes());
            prof
        })
        .collect();

    let mut rng = seeded_rng(config.seed);
    let mut centroids = init_centroids(&profiles, config.k, &mut rng);
    let mut assignment = vec![0usize; profiles.len()];
    let mut iterations = 0;
    let mut converged = false;

    for iter in 0..config.max_iters {
        iterations = iter + 1;
        // Assign step.
        let mut changed = false;
        for (i, prof) in profiles.iter().enumerate() {
            let best = nearest_centroid(prof, &centroids);
            if best != assignment[i] {
                assignment[i] = best;
                changed = true;
            }
        }
        if !changed && iter > 0 {
            converged = true;
            break;
        }
        // Update step: mean of member profiles (sparse accumulation).
        centroids = recompute_centroids(&profiles, &assignment, config.k, &centroids);
    }

    // Broadcast the assignment and rewrite the overlay.
    let moves: Vec<(PeerId, ClusterId)> = peers
        .iter()
        .zip(&assignment)
        .map(|(&p, &c)| {
            net.send(MsgKind::GlobalBroadcast, 8);
            (p, ClusterId::from_index(c))
        })
        .collect();
    system.move_peers(&moves);

    let mut dense = vec![usize::MAX; system.overlay().n_slots()];
    for (p, a) in peers.iter().zip(&assignment) {
        dense[p.index()] = *a;
    }
    KMeansOutcome {
        assignments: dense,
        iterations,
        converged,
    }
}

/// Farthest-point ("k-means++-lite") seeding: the first centroid is a
/// random profile; each next centroid is the profile least similar to its
/// nearest existing centroid. Deterministic given the RNG.
fn init_centroids<R: Rng + ?Sized>(
    profiles: &[PeerProfile],
    k: usize,
    rng: &mut R,
) -> Vec<PeerProfile> {
    assert!(!profiles.is_empty(), "cannot cluster zero peers");
    let mut centroids = Vec::with_capacity(k);
    centroids.push(profiles[rng.gen_range(0..profiles.len())].clone());
    while centroids.len() < k {
        let far = profiles
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let best = centroids
                    .iter()
                    .map(|c| cosine(p, c))
                    .fold(f64::NEG_INFINITY, f64::max);
                (i, best)
            })
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)))
            .map(|(i, _)| i)
            .expect("non-empty profiles");
        centroids.push(profiles[far].clone());
    }
    centroids
}

fn nearest_centroid(profile: &PeerProfile, centroids: &[PeerProfile]) -> usize {
    centroids
        .iter()
        .enumerate()
        .max_by(|(ai, a), (bi, b)| {
            cosine(profile, a)
                .partial_cmp(&cosine(profile, b))
                .unwrap()
                .then(bi.cmp(ai)) // prefer the lower index on ties
        })
        .map(|(i, _)| i)
        .expect("at least one centroid")
}

fn recompute_centroids(
    profiles: &[PeerProfile],
    assignment: &[usize],
    k: usize,
    previous: &[PeerProfile],
) -> Vec<PeerProfile> {
    let mut sums: Vec<std::collections::BTreeMap<recluster_types::Sym, f64>> =
        vec![Default::default(); k];
    let mut counts = vec![0usize; k];
    for (prof, &a) in profiles.iter().zip(assignment) {
        counts[a] += 1;
        for &(sym, w) in &prof.entries {
            *sums[a].entry(sym).or_insert(0.0) += w;
        }
    }
    sums.into_iter()
        .enumerate()
        .map(|(i, sum)| {
            if counts[i] == 0 {
                // Empty cluster keeps its previous centroid.
                previous[i].clone()
            } else {
                PeerProfile {
                    entries: sum
                        .into_iter()
                        .map(|(s, w)| (s, w / counts[i] as f64))
                        .collect(),
                }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use recluster_core::GameConfig;
    use recluster_overlay::{ContentStore, Overlay};
    use recluster_types::{Document, Sym, Workload};

    /// 6 peers in two obvious content groups: {0,1,2} on Sym(1..3),
    /// {3,4,5} on Sym(10..12); starts from singleton clusters.
    fn two_blob_system() -> System {
        let ov = Overlay::singletons(6);
        let mut store = ContentStore::new(6);
        for i in 0..3u32 {
            store.add(PeerId(i), Document::new(vec![Sym(1), Sym(2), Sym(3)]));
            store.add(PeerId(i), Document::new(vec![Sym(1 + i)]));
        }
        for i in 3..6u32 {
            store.add(PeerId(i), Document::new(vec![Sym(10), Sym(11), Sym(12)]));
            store.add(PeerId(i), Document::new(vec![Sym(7 + i)]));
        }
        System::new(ov, store, vec![Workload::new(); 6], GameConfig::default())
    }

    #[test]
    fn kmeans_recovers_the_two_blobs() {
        let mut sys = two_blob_system();
        let mut net = SimNetwork::new();
        let outcome = recluster_kmeans(
            &mut sys,
            KMeansConfig {
                k: 2,
                max_iters: 20,
                seed: 1,
            },
            &mut net,
        );
        let a = &outcome.assignments;
        assert_eq!(a[0], a[1]);
        assert_eq!(a[1], a[2]);
        assert_eq!(a[3], a[4]);
        assert_eq!(a[4], a[5]);
        assert_ne!(a[0], a[3]);
        assert!(outcome.converged);
        sys.overlay().check_invariants().unwrap();
        assert_eq!(sys.overlay().non_empty_clusters(), 2);
    }

    #[test]
    fn kmeans_charges_global_traffic() {
        let mut sys = two_blob_system();
        let mut net = SimNetwork::new();
        let _ = recluster_kmeans(
            &mut sys,
            KMeansConfig {
                k: 2,
                max_iters: 20,
                seed: 1,
            },
            &mut net,
        );
        // 6 uploads + 6 assignment downloads.
        assert_eq!(net.messages(MsgKind::GlobalBroadcast), 12);
        assert!(net.bytes(MsgKind::GlobalBroadcast) > 0);
    }

    #[test]
    fn kmeans_is_deterministic_for_a_seed() {
        let run = |seed| {
            let mut sys = two_blob_system();
            let mut net = SimNetwork::new();
            recluster_kmeans(
                &mut sys,
                KMeansConfig {
                    k: 2,
                    max_iters: 20,
                    seed,
                },
                &mut net,
            )
            .assignments
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn k_equal_one_merges_everyone() {
        let mut sys = two_blob_system();
        let mut net = SimNetwork::new();
        let outcome = recluster_kmeans(
            &mut sys,
            KMeansConfig {
                k: 1,
                max_iters: 5,
                seed: 2,
            },
            &mut net,
        );
        assert!(outcome.assignments[..6].iter().all(|&a| a == 0));
        assert_eq!(sys.overlay().non_empty_clusters(), 1);
    }

    #[test]
    fn departed_peers_are_skipped() {
        let mut sys = two_blob_system();
        sys.overlay_mut().unassign(PeerId(5));
        sys.refresh_mass();
        let mut net = SimNetwork::new();
        let outcome = recluster_kmeans(
            &mut sys,
            KMeansConfig {
                k: 2,
                max_iters: 10,
                seed: 3,
            },
            &mut net,
        );
        assert_eq!(outcome.assignments[5], usize::MAX);
        assert_eq!(sys.overlay().cluster_of(PeerId(5)), None);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let mut sys = two_blob_system();
        let mut net = SimNetwork::new();
        let _ = recluster_kmeans(
            &mut sys,
            KMeansConfig {
                k: 0,
                max_iters: 1,
                seed: 0,
            },
            &mut net,
        );
    }

    #[test]
    #[should_panic(expected = "exceeds the cluster-slot budget")]
    fn oversized_k_panics() {
        let mut sys = two_blob_system();
        let mut net = SimNetwork::new();
        let _ = recluster_kmeans(
            &mut sys,
            KMeansConfig {
                k: 99,
                max_iters: 1,
                seed: 0,
            },
            &mut net,
        );
    }
}
