//! Offline stand-in for the subset of the `criterion` API used by the
//! workspace's benches.
//!
//! The build environment has no access to crates.io, so the workspace
//! pins this path crate under the `criterion` package name. It keeps the
//! same bench-authoring surface — [`Criterion`], [`BenchmarkGroup`],
//! [`BenchmarkId`], [`Bencher::iter`] / [`Bencher::iter_batched`],
//! [`BatchSize`], [`black_box`], [`criterion_group!`] and
//! [`criterion_main!`] — and measures with a simple
//! warmup-then-sample wall-clock loop, reporting min/median/mean per
//! benchmark. Statistical analysis and plotting are intentionally out of
//! scope; `cargo bench` output is indicative.
//!
//! One extension beyond the criterion surface: when the
//! `RECLUSTER_BENCH_JSON` environment variable names a file, every
//! benchmark appends its median as one JSON object per line
//! (`{"id":…,"unit":"seconds","value":…}`), and [`record_value`] lets
//! benches emit non-time metrics (message counts, ratios) into the same
//! sink — the raw material of the CI bench-trend gate (see the
//! `bench-trend` binary in `recluster-bench`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion's optimizer barrier.
pub use std::hint::black_box;

/// Default number of timed samples per benchmark.
const DEFAULT_SAMPLE_SIZE: usize = 30;

/// Wall-clock budget one benchmark aims to stay within.
const DEFAULT_MEASUREMENT_TIME: Duration = Duration::from_millis(500);

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Applies command-line configuration. Recognizes a positional
    /// substring filter (as `cargo bench -- <filter>` passes) and
    /// ignores harness flags such as `--bench`.
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        self.filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
            measurement_time: DEFAULT_MEASUREMENT_TIME,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(
            &id,
            self.filter.as_deref(),
            DEFAULT_SAMPLE_SIZE,
            DEFAULT_MEASUREMENT_TIME,
            f,
        );
        self
    }
}

/// A group of benchmarks sharing a name prefix and sampling settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the wall-clock measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_benchmark(
            &full,
            self.criterion.filter.as_deref(),
            self.sample_size,
            self.measurement_time,
            f,
        );
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier: function name, parameter, or both.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter rendering.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just a parameter rendering.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// How much setup output `iter_batched` amortizes per timing batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small routine inputs: many iterations per batch.
    SmallInput,
    /// Large routine inputs: one iteration per batch.
    LargeInput,
    /// Exactly one setup per timed iteration.
    PerIteration,
}

/// Passed to the benchmark closure; runs and times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the bencher's iteration budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup
    /// time from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Whether quick mode is on (`RECLUSTER_BENCH_QUICK=1`): samples are
/// capped and the measurement budget shrunk so CI can smoke-run a bench
/// in seconds. Numbers from quick runs are indicative only.
fn quick_mode() -> bool {
    std::env::var("RECLUSTER_BENCH_QUICK").is_ok_and(|v| v == "1" || v.eq_ignore_ascii_case("true"))
}

/// Appends one metric to the `RECLUSTER_BENCH_JSON` sink (no-op when the
/// variable is unset). One JSON object per line; the `bench-trend`
/// binary folds the lines into a proper JSON array.
fn append_json_metric(id: &str, unit: &str, value: f64) {
    let Some(path) = std::env::var_os("RECLUSTER_BENCH_JSON") else {
        return;
    };
    match std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        Ok(mut f) => {
            let _ = writeln!(f, "{}", json_metric_line(id, unit, value));
        }
        Err(e) => eprintln!("RECLUSTER_BENCH_JSON: cannot append to {path:?}: {e}"),
    }
}

/// One sink line: a self-contained JSON object.
fn json_metric_line(id: &str, unit: &str, value: f64) -> String {
    format!("{{\"id\":{id:?},\"unit\":{unit:?},\"value\":{value:e}}}")
}

/// Records a non-time metric (a message count, a ratio, …) into the
/// bench report and the `RECLUSTER_BENCH_JSON` sink. Deterministic
/// metrics recorded this way give the CI trend gate machine-independent
/// series next to the wall-clock medians.
pub fn record_value(id: &str, unit: &str, value: f64) {
    println!("bench: {id:<50} value {value} {unit}");
    append_json_metric(id, unit, value);
}

fn run_benchmark<F>(
    id: &str,
    filter: Option<&str>,
    mut sample_size: usize,
    mut measurement_time: Duration,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    if let Some(filter) = filter {
        if !id.contains(filter) {
            return;
        }
    }
    if quick_mode() {
        sample_size = sample_size.min(5);
        measurement_time = measurement_time.min(Duration::from_millis(100));
    }

    // Calibrate: one iteration, to size the per-sample iteration count
    // so the whole benchmark fits roughly in the measurement budget.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let budget_per_sample = measurement_time / sample_size as u32;
    let iters = (budget_per_sample.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut bencher = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        samples.push(bencher.elapsed.as_secs_f64() / iters as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "bench: {id:<50} min {} | median {} | mean {} ({sample_size} samples x {iters} iters)",
        fmt_time(min),
        fmt_time(median),
        fmt_time(mean),
    );
    append_json_metric(id, "seconds", median);
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:8.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:8.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:8.2} ms", secs * 1e3)
    } else {
        format!("{secs:8.2} s ")
    }
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_and_iter_batched_measure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("compat");
        group.sample_size(2);
        group.measurement_time(Duration::from_millis(5));
        group.bench_function("iter", |b| b.iter(|| 1u64 + 1));
        group.bench_with_input(BenchmarkId::new("batched", 3), &3u64, |b, &n| {
            b.iter_batched(
                || vec![n; 4],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("f", "p").to_string(), "f/p");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }

    #[test]
    fn json_metric_lines_are_self_contained_objects() {
        let line = json_metric_line("cost/pcost", "seconds", 1.25e-6);
        assert_eq!(
            line,
            "{\"id\":\"cost/pcost\",\"unit\":\"seconds\",\"value\":1.25e-6}"
        );
        let count = json_metric_line("routing/messages", "msgs", 42.0);
        assert_eq!(
            count,
            "{\"id\":\"routing/messages\",\"unit\":\"msgs\",\"value\":4.2e1}"
        );
    }
}
