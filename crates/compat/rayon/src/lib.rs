//! Offline stand-in for the subset of the `rayon` 1.x API used by this
//! workspace.
//!
//! The build environment has no access to crates.io, so the workspace
//! pins this path crate under the `rayon` package name (the same offline
//! pattern as the in-tree `rand` / `proptest` / `criterion` shims). It
//! provides, with compatible signatures:
//!
//! * [`join`] — run two closures, the second on a scoped worker thread.
//! * [`scope`] / [`Scope::spawn`] — structured task spawning on top of
//!   [`std::thread::scope`].
//! * [`iter`] — order-preserving *indexed* parallel iterators over
//!   vectors, slices and `Range<usize>`: `par_iter()` /
//!   `into_par_iter()` → `map` → `collect` / `for_each`. Items are
//!   distributed over a scoped worker pool through an atomic work
//!   queue, and results are **merged back in index order**, so a
//!   `collect` is byte-identical to the sequential equivalent no matter
//!   how the OS schedules the workers.
//! * [`ThreadPoolBuilder`] — `num_threads(n).build_global()` pins the
//!   worker count (also honoured: the `RAYON_NUM_THREADS` environment
//!   variable); [`current_num_threads`] reports the effective value.
//!
//! Work stealing, nested pools, `par_bridge`, and unindexed iterators
//! are intentionally out of scope: the workspace fans out coarse,
//! independent scenario cells where a shared atomic cursor is within
//! noise of a stealing deque.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod iter;
pub mod prelude;

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker-count override installed by [`ThreadPoolBuilder::build_global`]
/// (0 = unset).
static GLOBAL_NUM_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Per-thread worker-count override set by [`ThreadPool::install`]
    /// (0 = unset). Thread-local rather than global so one sweep's pool
    /// never leaks into, or races with, another thread's.
    static LOCAL_NUM_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// The number of worker threads parallel operations use: the innermost
/// [`ThreadPool::install`] on this thread, else the global override if
/// one was installed, else `RAYON_NUM_THREADS`, else the machine's
/// available parallelism.
pub fn current_num_threads() -> usize {
    let local = LOCAL_NUM_THREADS.with(Cell::get);
    if local > 0 {
        return local;
    }
    let pinned = GLOBAL_NUM_THREADS.load(Ordering::Relaxed);
    if pinned > 0 {
        return pinned;
    }
    if let Some(n) = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Error returned by [`ThreadPoolBuilder::build_global`]; mirrors
/// rayon's type but never actually occurs here (re-installing simply
/// overwrites the pinned count).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("global thread pool already initialized")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Configures the worker count of the (implicit) global pool.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pins the worker count (`0` = automatic).
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Installs the configuration globally. Unlike upstream rayon this
    /// shim has no pool to materialize, so re-installation succeeds and
    /// simply overwrites the pinned count.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        GLOBAL_NUM_THREADS.store(self.num_threads, Ordering::Relaxed);
        Ok(())
    }

    /// Builds an explicit pool handle whose worker count applies only
    /// inside [`ThreadPool::install`] — never to other threads or to
    /// code outside the installed closure.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// An explicit thread-pool handle (a pinned worker count in this shim).
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's worker count: parallel iterators used
    /// inside `op` (on this thread) size themselves from it. The
    /// previous override is restored on exit, so installs nest and
    /// cannot clobber a global pin or race with other threads.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                LOCAL_NUM_THREADS.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(LOCAL_NUM_THREADS.with(|c| c.replace(self.num_threads)));
        op()
    }

    /// The pool's worker count (resolving 0 = automatic).
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            current_num_threads()
        }
    }
}

/// Runs `a` on the calling thread and `b` on a scoped worker, returning
/// both results. Panics propagate like rayon's: a panic in either
/// closure panics the join.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = hb.join().expect("rayon::join closure panicked");
        (ra, rb)
    })
}

/// A scope for structured task spawning, passed to the [`scope`]
/// closure.
pub struct Scope<'scope, 'env> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task that may outlive the closure but not the scope.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }));
    }
}

/// Creates a scope in which tasks can be spawned; blocks until every
/// spawned task finished (a panicking task panics the scope).
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R + Send,
    R: Send,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 6 * 7, || "ok");
        assert_eq!(a, 42);
        assert_eq!(b, "ok");
    }

    #[test]
    fn scope_spawn_runs_all_tasks() {
        use std::sync::atomic::AtomicU32;
        let hits = AtomicU32::new(0);
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn nested_scope_spawn_is_supported() {
        use std::sync::atomic::AtomicU32;
        let hits = AtomicU32::new(0);
        scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn current_num_threads_is_positive() {
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn install_scopes_the_worker_count_and_restores() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        assert_eq!(LOCAL_NUM_THREADS.with(Cell::get), 0);
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 2);
        // The thread-local override must not leak past install (the
        // global pin, exercised elsewhere, is a separate mechanism).
        assert_eq!(LOCAL_NUM_THREADS.with(Cell::get), 0);
        // Nested installs restore the outer override, not the default.
        let outer = ThreadPoolBuilder::new().num_threads(5).build().unwrap();
        let (o, i) = outer.install(|| (current_num_threads(), pool.install(current_num_threads)));
        assert_eq!((o, i), (5, 2));
        assert_eq!(outer.current_num_threads(), 5);
    }

    #[test]
    fn build_global_pins_thread_count() {
        // Serialize against other tests reading the global.
        ThreadPoolBuilder::new()
            .num_threads(3)
            .build_global()
            .unwrap();
        assert_eq!(current_num_threads(), 3);
        ThreadPoolBuilder::new()
            .num_threads(0)
            .build_global()
            .unwrap();
        assert!(current_num_threads() >= 1);
    }
}
