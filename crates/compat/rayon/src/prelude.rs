//! The glob-import surface, mirroring `rayon::prelude`.

pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
