//! Order-preserving indexed parallel iterators.
//!
//! The model is deliberately eager and simple: an adaptor chain is a
//! list of items plus a composed `Sync` mapping; a terminal operation
//! (`collect`, `for_each`, `sum`, `count`) drains the items through a
//! scoped worker pool. Workers pull indices from a shared atomic cursor
//! and push `(index, result)` pairs into thread-local buffers; the
//! terminal then merges the buffers **by index**, so the observable
//! output is identical to the sequential order regardless of
//! scheduling. That is the determinism contract the sweep runners in
//! `recluster-sim` build on.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::current_num_threads;

/// Types convertible into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// The iterator's item type.
    type Item: Send;
    /// The concrete parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

/// `par_iter()` on shared references (rayon's `IntoParallelRefIterator`).
pub trait IntoParallelRefIterator<'data> {
    /// The by-reference item type.
    type Item: Send;
    /// The concrete parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Borrowing counterpart of `into_par_iter`.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = ParIter<&'data T>;
    fn par_iter(&'data self) -> Self::Iter {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = ParIter<&'data T>;
    fn par_iter(&'data self) -> Self::Iter {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParIter<T>;
    fn into_par_iter(self) -> Self::Iter {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = ParIter<usize>;
    fn into_par_iter(self) -> Self::Iter {
        ParIter {
            items: self.collect(),
        }
    }
}

/// An indexed parallel iterator.
pub trait ParallelIterator: Sized {
    /// Item type produced by the iterator.
    type Item: Send;

    /// Drains the iterator into a vector of items **in index order**.
    fn drain_ordered(self) -> Vec<Self::Item>;

    /// Maps every item through `f` (applied on the worker threads).
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    /// Collects the mapped items in index order.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.drain_ordered().into_iter().collect()
    }

    /// Runs `f` on every item (on the worker threads); completion order
    /// of side effects is unspecified, as in rayon.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        let _ = self.map(f).drain_ordered();
    }

    /// Number of items.
    fn count(self) -> usize {
        self.drain_ordered().len()
    }

    /// Sums the items.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        self.drain_ordered().into_iter().sum()
    }
}

/// The source iterator over a list of items.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;

    fn drain_ordered(self) -> Vec<T> {
        self.items
    }
}

/// The `map` adaptor.
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, R, F> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    R: Send,
    F: Fn(B::Item) -> R + Sync,
{
    type Item = R;

    fn drain_ordered(self) -> Vec<R> {
        run_indexed(self.base.drain_ordered(), &self.f)
    }
}

/// Applies `f` to every item on a scoped worker pool and returns the
/// results in index order.
fn run_indexed<T: Send, R: Send>(items: Vec<T>, f: &(impl Fn(T) -> R + Sync)) -> Vec<R> {
    let n = items.len();
    let workers = current_num_threads().min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Hand out items through a mutex-guarded queue of (index, item) and
    // an atomic cursor; collect (index, result) per worker, then merge
    // in index order. Coarse items amortize the synchronization.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let cursor = AtomicUsize::new(0);
    let mut buckets: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let item = slots[i]
                            .lock()
                            .expect("work item lock poisoned")
                            .take()
                            .expect("work item claimed twice");
                        local.push((i, f(item)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    });

    let mut indexed: Vec<(usize, R)> = Vec::with_capacity(n);
    for bucket in &mut buckets {
        indexed.append(bucket);
    }
    indexed.sort_unstable_by_key(|&(i, _)| i);
    debug_assert!(indexed.iter().enumerate().all(|(k, &(i, _))| k == i));
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_preserves_index_order() {
        let squares: Vec<usize> = (0..1000).into_par_iter().map(|i| i * i).collect();
        let expected: Vec<usize> = (0..1000).map(|i| i * i).collect();
        assert_eq!(squares, expected);
    }

    #[test]
    fn par_iter_borrows_and_preserves_order() {
        let words = vec!["a", "bb", "ccc", "dddd"];
        let lens: Vec<usize> = words.par_iter().map(|w| w.len()).collect();
        assert_eq!(lens, vec![1, 2, 3, 4]);
    }

    #[test]
    fn uneven_work_still_merges_in_order() {
        // Heavier work at low indices: late completion must not reorder.
        let out: Vec<u64> = (0..64)
            .into_par_iter()
            .map(|i| {
                let spins = if i < 8 { 20_000 } else { 10 };
                let mut acc = i as u64;
                for k in 0..spins {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
                }
                std::hint::black_box(acc);
                i as u64
            })
            .collect();
        let expected: Vec<u64> = (0..64).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn for_each_visits_every_item() {
        use std::sync::atomic::AtomicU64;
        let sum = AtomicU64::new(0);
        (1..101usize).into_par_iter().for_each(|i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn sum_and_count_work() {
        assert_eq!((0..10usize).into_par_iter().count(), 10);
        let total: usize = (1..11usize).into_par_iter().sum();
        assert_eq!(total, 55);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<usize> = Vec::<usize>::new().into_par_iter().map(|i| i).collect();
        assert!(out.is_empty());
    }
}
