//! Distributions backing [`Rng::gen`](crate::Rng::gen) and
//! [`Rng::gen_range`](crate::Rng::gen_range).

use crate::RngCore;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one value from the distribution.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution of a type: uniform over all values for
/// integers and `bool`, uniform on `[0, 1)` for floats.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

macro_rules! standard_int_impl {
    ($($ty:ty),*) => {$(
        impl Distribution<$ty> for Standard {
            #[inline]
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

standard_int_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Distribution<bool> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    /// Uniform on `[0, 1)` with the conventional 53-bit construction.
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    /// Uniform on `[0, 1)` with the conventional 24-bit construction.
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

pub mod uniform {
    //! Uniform sampling from ranges.

    use crate::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// A range that can be sampled uniformly.
    pub trait SampleRange<T> {
        /// Draws one value; the range is guaranteed non-empty by the
        /// caller ([`Rng::gen_range`](crate::Rng::gen_range) asserts it).
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        /// Whether the range contains no values.
        fn is_empty(&self) -> bool;
    }

    /// Maps a raw 64-bit word into `[0, span)` by 128-bit widening
    /// multiply (Lemire reduction without the rejection step; the bias is
    /// at most `span / 2^64` per draw, far below statistical relevance
    /// for the spans this workspace uses).
    #[inline]
    fn reduce(word: u64, span: u64) -> u64 {
        ((word as u128 * span as u128) >> 64) as u64
    }

    macro_rules! int_range_impl {
        ($($ty:ty => $uty:ty),*) => {$(
            impl SampleRange<$ty> for Range<$ty> {
                #[inline]
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    let span = self.end.wrapping_sub(self.start) as $uty as u64;
                    let offset = reduce(rng.next_u64(), span) as $uty as $ty;
                    self.start.wrapping_add(offset)
                }
                #[inline]
                fn is_empty(&self) -> bool {
                    self.start >= self.end
                }
            }

            impl SampleRange<$ty> for RangeInclusive<$ty> {
                #[inline]
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    let span = end.wrapping_sub(start) as $uty as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $uty as $ty;
                    }
                    let offset = reduce(rng.next_u64(), span + 1) as $uty as $ty;
                    start.wrapping_add(offset)
                }
                #[inline]
                fn is_empty(&self) -> bool {
                    self.start() > self.end()
                }
            }
        )*};
    }

    int_range_impl!(
        u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
        i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
    );

    macro_rules! float_range_impl {
        ($($ty:ty),*) => {$(
            impl SampleRange<$ty> for Range<$ty> {
                #[inline]
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    let unit: $ty = crate::distributions::Distribution::sample(
                        &crate::distributions::Standard,
                        rng,
                    );
                    let v = self.start + unit * (self.end - self.start);
                    // Floating rounding can land exactly on `end`; clamp
                    // back inside the half-open interval.
                    if v >= self.end {
                        self.end.next_down()
                    } else {
                        v
                    }
                }
                #[inline]
                fn is_empty(&self) -> bool {
                    // NaN endpoints compare as unordered => empty.
                    self.start.partial_cmp(&self.end) != Some(std::cmp::Ordering::Less)
                }
            }

            impl SampleRange<$ty> for RangeInclusive<$ty> {
                #[inline]
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    let unit: $ty = crate::distributions::Distribution::sample(
                        &crate::distributions::Standard,
                        rng,
                    );
                    self.start() + unit * (self.end() - self.start())
                }
                #[inline]
                fn is_empty(&self) -> bool {
                    !matches!(
                        self.start().partial_cmp(self.end()),
                        Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
                    )
                }
            }
        )*};
    }

    float_range_impl!(f32, f64);
}
