//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace-standard seedable generator: xoshiro256**.
///
/// The real `rand::rngs::StdRng` documents that its output stream is not
/// stable across versions, so any statistically strong seedable generator
/// is a conforming replacement. xoshiro256** passes BigCrush and is the
/// generator behind `rand_xoshiro::Xoshiro256StarStar`.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    #[inline]
    fn next(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // The all-zero state is the one fixed point of the xoshiro
        // transition; nudge it to a valid state.
        if s == [0; 4] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0x2545_F491_4F6C_DD1D,
            ];
        }
        Self { s }
    }
}
