//! Offline stand-in for the subset of the `rand` 0.8 API used by this
//! workspace.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace pins this path crate under the `rand` package name
//! instead of the real dependency. It reimplements, with compatible
//! signatures and deterministic behavior:
//!
//! * [`RngCore`] / [`Rng`] / [`SeedableRng`] — the core trait stack,
//!   including `gen`, `gen_range`, `gen_bool`, `gen_ratio` and `sample`.
//! * [`rngs::StdRng`] — a seedable generator (xoshiro256**, seeded via a
//!   SplitMix64 expansion, as in `rand_xoshiro`). The real `StdRng` makes
//!   no stream-stability promise across versions, so a different but
//!   high-quality generator is a conforming substitute.
//! * [`seq::SliceRandom`] — Fisher–Yates `shuffle` and `choose`.
//! * [`distributions`] — the `Standard` distribution and uniform range
//!   sampling used by `gen`/`gen_range`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distributions;
pub mod rngs;
pub mod seq;

use distributions::uniform::SampleRange;
use distributions::{Distribution, Standard};

/// Low-level source of randomness: raw 32/64-bit words and byte fills.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        assert!(!range.is_empty(), "cannot sample empty range");
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range [0, 1]");
        self.gen::<f64>() < p
    }

    /// Returns `true` with probability `numerator / denominator`.
    ///
    /// # Panics
    /// Panics if `denominator` is zero or `numerator > denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0, "gen_ratio denominator must be non-zero");
        assert!(
            numerator <= denominator,
            "gen_ratio numerator {numerator} > denominator {denominator}"
        );
        self.gen_range(0..denominator) < numerator
    }

    /// Samples a value from the given distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be constructed from a fixed seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn nearby_seeds_decorrelate() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
        // Shifted-stream overlap would make suffix == prefix; rule it out.
        assert_ne!(va[1..], vb[..15]);
    }

    #[test]
    fn gen_range_covers_and_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let f = rng.gen_range(2.0f64..3.0);
            assert!((2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn float_ranges_with_non_positive_ends_stay_half_open() {
        // Regression: the rounding clamp must step toward -inf even when
        // `end` is zero or negative (a raw bit decrement does not).
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..5000 {
            let a = rng.gen_range(-2.0f64..0.0);
            assert!((-2.0..0.0).contains(&a), "{a}");
            let b = rng.gen_range(-3.0f64..-1.0);
            assert!((-3.0..-1.0).contains(&b), "{b}");
            let c = rng.gen_range(-1.0f32..0.0);
            assert!((-1.0f32..0.0).contains(&c), "{c}");
        }
        assert!(0.0f64.next_down() < 0.0);
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn fill_bytes_fills_every_length() {
        let mut rng = StdRng::seed_from_u64(3);
        for len in 0..20 {
            let mut buf = vec![0u8; len];
            rng.fill_bytes(&mut buf);
            if len >= 8 {
                assert!(buf.iter().any(|&b| b != 0));
            }
        }
    }
}
