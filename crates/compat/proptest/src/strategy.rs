//! Value-generation strategies.
//!
//! A [`Strategy`] deterministically maps an RNG to a value. Unlike real
//! proptest there is no value tree and no shrinking; combinators compose
//! plain generators.

use rand::rngs::StdRng;
use rand::Rng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// How many times filtering combinators retry before giving up on a
/// case.
const FILTER_RETRIES: usize = 1_000;

/// A generator of test-case values.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing function and
    /// draws from the resulting strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values satisfying `f`, retrying otherwise.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Maps values through a partial function, retrying on `None`.
    fn prop_filter_map<O, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            inner: self,
            whence,
            f,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A strategy behind a vtable, as produced by [`boxed`].
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

/// Type-erases a strategy (used by `prop_oneof!`).
pub fn boxed<S>(strategy: S) -> BoxedStrategy<S::Value>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..FILTER_RETRIES {
            let value = self.inner.generate(rng);
            if (self.f)(&value) {
                return value;
            }
        }
        panic!("prop_filter exhausted retries: {}", self.whence);
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Clone, Debug)]
pub struct FilterMap<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        for _ in 0..FILTER_RETRIES {
            if let Some(value) = (self.f)(self.inner.generate(rng)) {
                return value;
            }
        }
        panic!("prop_filter_map exhausted retries: {}", self.whence);
    }
}

/// Uniform choice among type-erased strategies (`prop_oneof!`).
pub struct Union<T: Debug> {
    branches: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Union<T> {
    /// Builds a union; panics if `branches` is empty.
    pub fn new(branches: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!branches.is_empty(), "prop_oneof! needs at least one arm");
        Self { branches }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.branches.len());
        self.branches[i].generate(rng)
    }
}

macro_rules! range_strategy_impl {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut StdRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut StdRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy_impl {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy_impl!(A);
tuple_strategy_impl!(A, B);
tuple_strategy_impl!(A, B, C);
tuple_strategy_impl!(A, B, C, D);
tuple_strategy_impl!(A, B, C, D, E);
tuple_strategy_impl!(A, B, C, D, E, F);
tuple_strategy_impl!(A, B, C, D, E, F, G);
tuple_strategy_impl!(A, B, C, D, E, F, G, H);

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}
