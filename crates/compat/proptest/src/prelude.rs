//! The glob-import surface, mirroring `proptest::prelude`.

pub use crate::strategy::{BoxedStrategy, Just, Strategy};
pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
