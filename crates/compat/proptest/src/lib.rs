//! Offline stand-in for the subset of the `proptest` API used by this
//! workspace.
//!
//! The build environment has no access to crates.io, so the workspace
//! pins this path crate under the `proptest` package name. It provides
//! the same surface the tests are written against:
//!
//! * the [`proptest!`] macro with `#![proptest_config(..)]`, `#[test]`
//!   functions and `pattern in strategy` arguments;
//! * [`Strategy`](strategy::Strategy) with `prop_map`, `prop_flat_map`,
//!   `prop_filter`, `prop_filter_map`, tuple/range/regex-string
//!   strategies, [`Just`](strategy::Just) and [`prop_oneof!`];
//! * [`collection::vec`], [`bool::ANY`];
//! * `prop_assert!`-family macros, [`prop_assume!`] and
//!   [`TestCaseError`](test_runner::TestCaseError).
//!
//! The one deliberate omission is *shrinking*: a failing case reports its
//! generated inputs and its deterministic case seed instead of a
//! minimized counterexample. Runs are fully deterministic per test
//! function, so failures always reproduce.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bool;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Declares property-based tests.
///
/// Mirrors `proptest::proptest!`: an optional
/// `#![proptest_config(expr)]` header followed by `#[test]` functions
/// whose arguments are drawn from strategies with `name in strategy`
/// syntax. Each function body runs once per generated case and may use
/// the `prop_assert*` macros, `prop_assume!`, and `?` on
/// `Result<_, TestCaseError>` values.
#[macro_export]
macro_rules! proptest {
    (
        @impl config = $config:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                $crate::test_runner::run_cases(config, stringify!($name), |__rng| {
                    let __inputs = (
                        $($crate::strategy::Strategy::generate(&($strategy), __rng),)+
                    );
                    let __described = format!("{:?}", __inputs);
                    let ($($arg,)+) = __inputs;
                    let __result: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    (__described, __result)
                });
            }
        )*
    };

    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest! {
            @impl config = $config;
            $($rest)*
        }
    };

    ( $($rest:tt)* ) => {
        $crate::proptest! {
            @impl config = $crate::test_runner::Config::default();
            $($rest)*
        }
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the current
/// case (with its generated inputs) rather than panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)).into(),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            __l,
            __r,
            format!($($fmt)+)
        );
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `(left != right)`\n  both: `{:?}`: {}",
            __l,
            format!($($fmt)+)
        );
    }};
}

/// Discards the current case (retrying with fresh inputs) unless the
/// condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::reject(concat!(
                    "assumption failed: ",
                    stringify!($cond)
                ))
                .into(),
            );
        }
    };
}

/// Picks uniformly among several strategies producing the same value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::boxed($strategy),)+
        ])
    };
}
