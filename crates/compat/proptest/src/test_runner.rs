//! The case runner: deterministic per-test seeding, reject handling,
//! and failure reporting.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Maximum consecutive rejects (`prop_assume!` misses) per case before
/// the whole test errors out.
const MAX_REJECTS_PER_CASE: u32 = 256;

/// Runner configuration (`ProptestConfig` in the prelude).
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of successful cases each test must pass.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// Why a single case did not pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case's assumptions were not met; it is retried with fresh
    /// inputs and does not count as a failure.
    Reject(String),
    /// The case genuinely failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// Builds a rejection.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(r) => write!(f, "case rejected: {r}"),
            TestCaseError::Fail(r) => write!(f, "case failed: {r}"),
        }
    }
}

/// Convenience alias matching real proptest.
pub type TestCaseResult = Result<(), TestCaseError>;

/// FNV-1a, used to give every test function its own seed stream.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Runs `config.cases` cases of a single property.
///
/// `case` receives a case-specific deterministic RNG and returns the
/// debug rendering of its generated inputs together with the case
/// outcome. Failures panic (so the surrounding `#[test]` fails) and
/// include the inputs and the case seed for reproduction.
pub fn run_cases<F>(config: Config, test_name: &str, mut case: F)
where
    F: FnMut(&mut StdRng) -> (String, TestCaseResult),
{
    let base = fnv1a(test_name.as_bytes());
    for case_idx in 0..config.cases {
        let mut attempt = 0u32;
        loop {
            // SplitMix-style finalizer over (test, case, attempt) keeps
            // every case independent yet exactly reproducible.
            let mut seed = base
                .wrapping_add((case_idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .wrapping_add((attempt as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
            seed = (seed ^ (seed >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            seed = (seed ^ (seed >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            seed ^= seed >> 31;

            let mut rng = StdRng::seed_from_u64(seed);
            let (inputs, outcome) = case(&mut rng);
            match outcome {
                Ok(()) => break,
                Err(TestCaseError::Reject(reason)) => {
                    attempt += 1;
                    assert!(
                        attempt < MAX_REJECTS_PER_CASE,
                        "proptest '{test_name}': case {case_idx} rejected \
                         {MAX_REJECTS_PER_CASE} times ({reason})"
                    );
                }
                Err(TestCaseError::Fail(reason)) => {
                    panic!(
                        "proptest '{test_name}' failed at case {case_idx} \
                         (seed {seed:#018x}):\n{reason}\ninputs: {inputs}"
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn passes_when_all_cases_pass() {
        run_cases(Config::with_cases(32), "always_ok", |rng| {
            let v: u64 = rng.gen();
            (format!("{v}"), Ok(()))
        });
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn panics_on_failure() {
        run_cases(Config::with_cases(8), "always_fail", |_rng| {
            ("()".to_string(), Err(TestCaseError::fail("nope")))
        });
    }

    #[test]
    fn rejects_retry_with_fresh_inputs() {
        let mut saw_odd = false;
        run_cases(Config::with_cases(16), "rejects", |rng| {
            let v: u64 = rng.gen();
            if v.is_multiple_of(2) {
                (format!("{v}"), Err(TestCaseError::reject("even")))
            } else {
                saw_odd = true;
                (format!("{v}"), Ok(()))
            }
        });
        assert!(saw_odd);
    }
}
