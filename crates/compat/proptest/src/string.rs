//! String generation from a small regex subset.
//!
//! Real proptest interprets `&str` strategies as full regexes. This
//! stand-in supports the fragment the workspace's tests use — literal
//! characters, `.`, character classes like `[a-z0-9_]`, and the
//! quantifiers `{n}`, `{m,n}`, `?`, `*`, `+` — which is enough for
//! patterns such as `".{0,100}"` and `"[a-z]{3,12}"`.

use rand::rngs::StdRng;
use rand::Rng;

/// One regex atom: a set of candidate characters.
#[derive(Clone, Debug)]
enum Atom {
    /// `.` — any character except a line break.
    AnyChar,
    /// A character class: inclusive ranges of code points.
    Class(Vec<(char, char)>),
    /// A literal character.
    Literal(char),
}

/// An atom plus its repetition bounds (inclusive).
#[derive(Clone, Debug)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// Upper repetition bound for the open-ended `*` and `+` quantifiers.
const OPEN_REPEAT_MAX: usize = 8;

fn parse(pattern: &str) -> Vec<Piece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '.' => Atom::AnyChar,
            '[' => {
                let mut ranges = Vec::new();
                let mut members: Vec<char> = Vec::new();
                for inner in chars.by_ref() {
                    if inner == ']' {
                        break;
                    }
                    members.push(inner);
                }
                let mut i = 0;
                while i < members.len() {
                    if i + 2 < members.len() && members[i + 1] == '-' {
                        ranges.push((members[i], members[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((members[i], members[i]));
                        i += 1;
                    }
                }
                assert!(!ranges.is_empty(), "empty character class in {pattern:?}");
                Atom::Class(ranges)
            }
            '\\' => Atom::Literal(chars.next().expect("dangling escape")),
            other => Atom::Literal(other),
        };
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for inner in chars.by_ref() {
                    if inner == '}' {
                        break;
                    }
                    spec.push(inner);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => {
                        let lo: usize = lo.trim().parse().expect("bad {m,n} lower bound");
                        let hi: usize = hi.trim().parse().expect("bad {m,n} upper bound");
                        (lo, hi)
                    }
                    None => {
                        let n: usize = spec.trim().parse().expect("bad {n} count");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, OPEN_REPEAT_MAX)
            }
            Some('+') => {
                chars.next();
                (1, OPEN_REPEAT_MAX)
            }
            _ => (1, 1),
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn sample_char(atom: &Atom, rng: &mut StdRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::Class(ranges) => {
            let (lo, hi) = ranges[rng.gen_range(0..ranges.len())];
            char::from_u32(rng.gen_range(lo as u32..=hi as u32)).unwrap_or(lo)
        }
        Atom::AnyChar => loop {
            // Weight towards printable ASCII but keep the full scalar
            // range reachable, mirroring proptest's `.` behavior.
            let c = if rng.gen_ratio(9, 10) {
                char::from_u32(rng.gen_range(0x20u32..0x7F)).unwrap_or('x')
            } else {
                match char::from_u32(rng.gen_range(0u32..0x11_0000)) {
                    Some(c) => c,
                    None => continue, // surrogate gap
                }
            };
            if c != '\n' && c != '\r' {
                return c;
            }
        },
    }
}

/// Generates a string matching `pattern` (see module docs for the
/// supported subset).
pub fn generate_matching(pattern: &str, rng: &mut StdRng) -> String {
    let mut out = String::new();
    for piece in parse(pattern) {
        let count = rng.gen_range(piece.min..=piece.max);
        for _ in 0..count {
            out.push(sample_char(&piece.atom, rng));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn class_with_count_range() {
        let mut rng = rng();
        for _ in 0..100 {
            let s = generate_matching("[a-z]{3,12}", &mut rng);
            assert!((3..=12).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn dot_with_bounds_avoids_newlines() {
        let mut rng = rng();
        for _ in 0..100 {
            let s = generate_matching(".{0,100}", &mut rng);
            assert!(s.chars().count() <= 100);
            assert!(!s.contains('\n'));
        }
    }

    #[test]
    fn literals_and_quantifiers() {
        let mut rng = rng();
        let s = generate_matching("ab{2}c?", &mut rng);
        assert!(s == "abb" || s == "abbc", "{s:?}");
        for _ in 0..50 {
            let s = generate_matching("[0-9]+", &mut rng);
            assert!(!s.is_empty() && s.chars().all(|c| c.is_ascii_digit()));
        }
    }
}
