//! Collection strategies.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// A count or range of counts for generated collections.
#[derive(Clone, Debug)]
pub struct SizeRange(Range<usize>);

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange(n..n + 1)
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange(r)
    }
}

/// Generates `Vec`s whose elements come from `element` and whose length
/// is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.0.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
