//! Cluster *discovery* on a synthetic Newsgroup corpus: starting from
//! singleton clusters, the selfish relocation strategy assembles one
//! cluster per article category — the paper's §4.1 observation that
//! "our proposed strategies can also be applied to cluster discovery".
//!
//! Run with: `cargo run --release --example newsgroup_discovery`

use recluster::core::is_nash_equilibrium;
use recluster::sim::runner::StrategyKind;
use recluster::sim::scenario::{build_system, ExperimentConfig, InitialConfig, Scenario};
use recluster::sim::table1::{run_cell, Table1Config};

fn main() {
    let cfg = ExperimentConfig::small(7);
    println!(
        "testbed: {} peers, {} categories, {} articles/peer, α = {}, θ = {}",
        cfg.n_peers, cfg.n_categories, cfg.docs_per_peer, cfg.alpha, cfg.theta
    );

    // Peek at the generated corpus.
    let tb = build_system(Scenario::SameCategory, InitialConfig::Singletons, &cfg);
    let corpus = &tb.corpus;
    println!(
        "corpus: {} documents, {} distinct stemmed words",
        corpus.total_docs(),
        corpus.interner().len()
    );
    let sample: Vec<&str> = corpus.category_syms(0)[..5]
        .iter()
        .map(|&s| corpus.interner().resolve(s))
        .collect();
    println!("category 0's most frequent words: {sample:?}");

    // Run the discovery experiment for both strategies.
    let t1 = Table1Config {
        experiment: cfg,
        max_rounds: 100,
        epsilon: 1e-3,
    };
    for kind in [StrategyKind::Selfish, StrategyKind::Altruistic] {
        let row = run_cell(Scenario::SameCategory, InitialConfig::Singletons, kind, &t1);
        println!(
            "\n{}: {} rounds → {} clusters, SCost {:.3}, WCost {:.3}, Nash: {}",
            row.strategy,
            row.rounds.map_or("-".into(), |r| r.to_string()),
            row.clusters,
            row.scost,
            row.wcost,
            row.nash,
        );
    }

    // Verify the discovered clustering is the category partition.
    let mut tb = build_system(
        Scenario::SameCategory,
        InitialConfig::Singletons,
        &t1.experiment,
    );
    let mut net = recluster::overlay::SimNetwork::new();
    recluster::sim::runner::run_protocol(
        &mut tb.system,
        StrategyKind::Selfish,
        recluster::core::ProtocolConfig::default(),
        &mut net,
    );
    let mut pure = 0;
    for cid in tb.system.overlay().cluster_ids() {
        let members = tb.system.overlay().cluster(cid).members();
        if members.is_empty() {
            continue;
        }
        let first_cat = tb.peer_category[members[0].index()];
        if members
            .iter()
            .all(|m| tb.peer_category[m.index()] == first_cat)
        {
            pure += 1;
        }
    }
    println!(
        "\ncategory-pure clusters: {}/{} — equilibrium: {}",
        pure,
        tb.system.overlay().non_empty_clusters(),
        is_nash_equilibrium(&tb.system, true)
    );
}
