//! Selfish vs. altruistic under drift — the §4.2 story in one run.
//!
//! Workload drift (peers' interests move to another cluster's data) is a
//! *selfish* trigger: the affected peers chase their new interests.
//! Content drift (peers' data is replaced by another category) is an
//! *altruistic* trigger: the affected providers follow the demand for
//! their new data. Each strategy repairs the update type it can see.
//!
//! Run with: `cargo run --release --example selfish_vs_altruistic`

use recluster::sim::fig23::{run_point, UpdateMode};
use recluster::sim::runner::StrategyKind;
use recluster::sim::scenario::ExperimentConfig;

fn main() {
    let cfg = ExperimentConfig::small(9);
    let fraction = 1.0; // the whole cluster is affected

    println!("update type        | strategy   | cost before | cost after | moves");
    println!("-------------------+------------+-------------+------------+------");
    for (mode, label) in [
        (UpdateMode::WorkloadPeers, "workload drift"),
        (UpdateMode::DataPeers, "content drift "),
    ] {
        for kind in [StrategyKind::Selfish, StrategyKind::Altruistic] {
            let p = run_point(&cfg, mode, kind, fraction, 80);
            println!(
                "{label}     | {:10} | {:11.3} | {:10.3} | {:5}",
                kind.label(),
                p.scost_before,
                p.scost_after,
                p.moves
            );
        }
    }

    println!();
    println!("reading the table:");
    println!(" * workload drift: the selfish strategy repairs it (the drifted peers");
    println!("   relocate); altruists only follow once demand at the destination");
    println!("   overtakes what they serve at home.");
    println!(" * content drift: selfish peers have no motive to move (their queries");
    println!("   didn't change), while altruistic providers relocate to the cluster");
    println!("   that wants their new data — mirroring the paper's Figs. 2 and 3.");
}
