//! The distributed statistics path of §3.1: peers do not see the global
//! system — they learn per-cluster recall from the `cid` annotations on
//! their query results and their contribution from the queries they
//! serve. This example routes one observation period through the overlay
//! and shows that the observed estimates match the omniscient (oracle)
//! cost values exactly under flood routing.
//!
//! Run with: `cargo run --release --example observed_statistics`

use recluster::core::{pcost, simulate_period, AltruisticStrategy, RelocationStrategy};
use recluster::overlay::SimNetwork;
use recluster::sim::scenario::{build_system, ExperimentConfig, InitialConfig, Scenario};
use recluster::types::PeerId;

fn main() {
    let cfg = ExperimentConfig::small(5);
    let tb = build_system(Scenario::SameCategory, InitialConfig::RandomM, &cfg);
    let system = &tb.system;

    // One observation period T: every peer's workload is routed
    // (flooded) through the overlay; results carry cid annotations.
    let mut net = SimNetwork::new();
    let observations = simulate_period(system, &mut net);
    println!(
        "period T routed {} messages ({} bytes)",
        net.total_messages(),
        net.total_bytes()
    );

    // Selfish view: observed pcost(p, c) vs. the oracle.
    let probe = PeerId(0);
    let current = system.overlay().cluster_of(probe);
    println!("\npeer {probe}: observed vs oracle pcost for the 6 fullest clusters");
    let mut clusters: Vec<_> = system
        .overlay()
        .cluster_ids()
        .filter(|&c| !system.overlay().cluster(c).is_empty())
        .collect();
    clusters.sort_by_key(|&c| std::cmp::Reverse(system.overlay().size(c)));
    let mut worst: f64 = 0.0;
    for &cid in clusters.iter().take(6) {
        let observed = observations.estimated_pcost(system, probe, cid, current);
        let oracle = pcost(system, probe, cid);
        worst = worst.max((observed - oracle).abs());
        println!("  {cid}: observed {observed:.6}  oracle {oracle:.6}");
    }
    println!("max |observed − oracle| = {worst:.2e}");
    assert!(worst < 1e-9);

    // Altruistic view: observed contribution vs. Eq. 6 computed from the
    // recall index.
    let mut strategy = AltruisticStrategy::new();
    strategy.prepare(system);
    let mut worst: f64 = 0.0;
    for &cid in clusters.iter().take(6) {
        let observed = observations.estimated_contribution(probe, cid);
        let oracle = strategy.contribution(probe, cid);
        worst = worst.max((observed - oracle).abs());
    }
    println!("max |observed − oracle| contribution = {worst:.2e}");
    assert!(worst < 1e-9);

    println!("\nthe strategies are implementable from purely local observations ✓");
}
