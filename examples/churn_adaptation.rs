//! Maintenance under churn: peers keep joining and leaving; the periodic
//! reformulation protocol repairs the overlay each period, keeping the
//! social cost near the ideal while the unmaintained overlay drifts.
//!
//! Run with: `cargo run --release --example churn_adaptation`

use recluster::sim::churn::{run_churn, ChurnConfig};
use recluster::sim::runner::StrategyKind;
use recluster::sim::scenario::ExperimentConfig;
use recluster::sim::{RoutingMode, SummaryMode};

fn main() {
    let cfg = ExperimentConfig::small(11);
    let base = ChurnConfig {
        periods: 10,
        leaves_per_period: 2,
        joins_per_period: 2,
        maintenance: Some(StrategyKind::Selfish),
        max_rounds: 60,
        // Queries visit only summary-matching clusters; with exact
        // summaries the results equal flooding's, at a fraction of the
        // messages.
        routing: RoutingMode::Routed(SummaryMode::Exact),
        ..ChurnConfig::default()
    };

    let maintained = run_churn(&cfg, &base);
    let unmaintained = run_churn(
        &cfg,
        &ChurnConfig {
            maintenance: None,
            ..base.clone()
        },
    );

    println!("period | peers | unmaintained | after churn | maintained | moves | query msgs");
    println!("-------+-------+--------------+-------------+------------+-------+-----------");
    for (m, u) in maintained.iter().zip(unmaintained.iter()) {
        println!(
            "{:6} | {:5} | {:12.3} | {:11.3} | {:10.3} | {:5} | {:10}",
            m.period,
            m.peers,
            u.scost_after_repair,
            m.scost_after_churn,
            m.scost_after_repair,
            m.moves,
            m.query_messages
        );
    }

    let avg = |rows: &[recluster::sim::churn::ChurnPeriod]| {
        rows.iter().map(|r| r.scost_after_repair).sum::<f64>() / rows.len() as f64
    };
    println!(
        "\nmean social cost — maintained: {:.3}, unmaintained: {:.3}",
        avg(&maintained),
        avg(&unmaintained)
    );
    assert!(avg(&maintained) < avg(&unmaintained));
    println!("the protocol keeps the overlay healthy under churn ✓");
}
