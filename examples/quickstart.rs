//! Quickstart: build a tiny clustered P2P system by hand, inspect the
//! individual cost function (Eq. 1), and let the reformulation protocol
//! reorganize the overlay.
//!
//! Run with: `cargo run --example quickstart`

use recluster::core::{
    best_response, is_nash_equilibrium, pcost, GameConfig, ProtocolConfig, ProtocolEngine,
    SelfishStrategy, System,
};
use recluster::overlay::{ContentStore, Overlay, SimNetwork, Theta};
use recluster::types::{ClusterId, Document, Interner, PeerId, Query, Workload};

fn main() {
    // Six peers in two interest groups: 0–2 share (and want) "database"
    // articles, 3–5 share (and want) "overlay" articles.
    let mut interner = Interner::new();
    let db = interner.intern("database");
    let ov_word = interner.intern("overlay");

    let overlay = Overlay::singletons(6); // configuration (i): everyone alone
    let mut store = ContentStore::new(6);
    let mut workloads = Vec::new();
    for i in 0..6u32 {
        let word = if i < 3 { db } else { ov_word };
        store.add(PeerId(i), Document::new(vec![word]));
        let mut w = Workload::new();
        w.add(Query::keyword(word), 4);
        workloads.push(w);
    }

    let mut system = System::new(
        overlay,
        store,
        workloads,
        GameConfig {
            alpha: 0.5,
            theta: Theta::Linear,
        },
    );

    println!("— initial state: every peer in its own cluster —");
    let p0 = PeerId(0);
    println!(
        "pcost(p0, its own cluster) = {:.3}  (membership {:.3} + recall loss {:.3})",
        pcost(&system, p0, ClusterId(0)),
        0.5 * 1.0 / 6.0,
        1.0 - 1.0 / 3.0,
    );
    let br = best_response(&system, p0, true);
    println!(
        "p0's best response: join {} for a gain of {:.3}",
        br.cluster, br.gain
    );

    // Run the two-phase reformulation protocol (§3.2) with the selfish
    // strategy until no peer wants to move.
    let mut engine = ProtocolEngine::new(SelfishStrategy, ProtocolConfig::default());
    let mut net = SimNetwork::new();
    let outcome = engine.run(&mut system, &mut net);

    println!(
        "\n— after {} protocol rounds —",
        outcome.rounds_to_converge()
    );
    println!("converged: {}", outcome.converged);
    println!(
        "non-empty clusters: {}",
        system.overlay().non_empty_clusters()
    );
    println!(
        "normalized social cost: {:.3} (was {:.3})",
        outcome.final_scost(),
        outcome.rounds.first().map_or(0.0, |r| r.scost)
    );
    println!("Nash equilibrium: {}", is_nash_equilibrium(&system, true));
    println!("protocol messages: {}", net.total_messages());

    // The two interest groups found each other.
    for group in [[0u32, 1, 2], [3, 4, 5]] {
        let c0 = system.overlay().cluster_of(PeerId(group[0]));
        for &i in &group {
            assert_eq!(system.overlay().cluster_of(PeerId(i)), c0);
        }
    }
    println!("\neach interest group ended up in one cluster ✓");
}
