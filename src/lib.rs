//! Facade crate: re-exports the whole `recluster` workspace public API.
pub use recluster_baselines as baselines;
pub use recluster_core as core;
pub use recluster_corpus as corpus;
pub use recluster_overlay as overlay;
pub use recluster_sim as sim;
pub use recluster_types as types;
