#!/usr/bin/env python3
"""Checks that relative links in the repo's markdown files resolve.

Scope: inline markdown links/images `[text](target)` whose target is a
repo-relative path or an anchor. Skipped on purpose:

* absolute URLs (`http:`, `https:`, `mailto:`) — no network in CI;
* paths that escape the repository root (GitHub-web relative URLs such
  as the `../../actions/...` badge links resolve against github.com,
  not the working tree).

`#fragment` anchors — both in-page (`#section`) and on repo markdown
targets (`docs/FOO.md#section`) — are validated against the target
file's headings, slugified the way GitHub does (lowercase; drop
everything but alphanumerics, underscores, hyphens and spaces; spaces
to hyphens; `-1`, `-2`, … suffixes for duplicates). Exits non-zero
listing every broken link or anchor.
"""

import os
import re
import sys

FILES = ["README.md", "ROADMAP.md"]
DOCS_DIR = "docs"

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$")


def strip_fences(text):
    # Fenced code blocks are neither links nor headings.
    return re.sub(r"```.*?```", "", text, flags=re.S)


def targets(path):
    with open(path, encoding="utf-8") as fh:
        return LINK_RE.findall(strip_fences(fh.read()))


def github_slug(heading):
    # Inline markup contributes its text only: `code`, **bold**, [text](url).
    heading = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)
    heading = heading.replace("`", "").replace("*", "")
    heading = heading.strip().lower()
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def anchors_of(path, cache={}):
    """The set of valid GitHub heading anchors of a markdown file."""
    if path not in cache:
        slugs = set()
        counts = {}
        with open(path, encoding="utf-8") as fh:
            for line in strip_fences(fh.read()).splitlines():
                m = HEADING_RE.match(line)
                if not m:
                    continue
                slug = github_slug(m.group(1))
                n = counts.get(slug, 0)
                counts[slug] = n + 1
                slugs.add(slug if n == 0 else f"{slug}-{n}")
        cache[path] = slugs
    return cache[path]


def main():
    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    files = [f for f in FILES if os.path.exists(os.path.join(repo, f))]
    docs = os.path.join(repo, DOCS_DIR)
    if os.path.isdir(docs):
        files += [
            os.path.join(DOCS_DIR, f) for f in sorted(os.listdir(docs)) if f.endswith(".md")
        ]

    broken = []
    checked = 0
    for rel in files:
        source = os.path.join(repo, rel)
        base = os.path.dirname(source)
        for target in targets(source):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part, _, fragment = target.partition("#")
            path = source if not path_part else os.path.normpath(os.path.join(base, path_part))
            if not path.startswith(repo + os.sep):
                continue  # escapes the repo: a github-web relative URL
            checked += 1
            if not os.path.exists(path):
                broken.append(f"{rel}: ({target}) -> missing {os.path.relpath(path, repo)}")
                continue
            if fragment and path.endswith(".md"):
                if fragment not in anchors_of(path):
                    broken.append(
                        f"{rel}: ({target}) -> no heading #{fragment} "
                        f"in {os.path.relpath(path, repo)}"
                    )

    for line in broken:
        print(f"BROKEN  {line}")
    print(f"check_md_links: {checked} repo-relative links checked in {len(files)} files")
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main())
