#!/usr/bin/env python3
"""Checks that relative links in the repo's markdown files resolve.

Scope: inline markdown links/images `[text](target)` whose target is a
repo-relative path. Skipped on purpose:

* absolute URLs (`http:`, `https:`, `mailto:`) — no network in CI;
* pure in-page anchors (`#...`);
* paths that escape the repository root (GitHub-web relative URLs such
  as the `../../actions/...` badge links resolve against github.com,
  not the working tree).

Anchors on repo files (`docs/FOO.md#section`) are checked for file
existence only. Exits non-zero listing every broken link.
"""

import os
import re
import sys

FILES = ["README.md", "ROADMAP.md"]
DOCS_DIR = "docs"

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")


def targets(path):
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    # Strip fenced code blocks: their bracket syntax is not a link.
    text = re.sub(r"```.*?```", "", text, flags=re.S)
    return LINK_RE.findall(text)


def main():
    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    files = [f for f in FILES if os.path.exists(os.path.join(repo, f))]
    docs = os.path.join(repo, DOCS_DIR)
    if os.path.isdir(docs):
        files += [
            os.path.join(DOCS_DIR, f) for f in sorted(os.listdir(docs)) if f.endswith(".md")
        ]

    broken = []
    checked = 0
    for rel in files:
        base = os.path.dirname(os.path.join(repo, rel))
        for target in targets(os.path.join(repo, rel)):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = os.path.normpath(os.path.join(base, target.split("#")[0]))
            if not path.startswith(repo + os.sep):
                continue  # escapes the repo: a github-web relative URL
            checked += 1
            if not os.path.exists(path):
                broken.append(f"{rel}: ({target}) -> missing {os.path.relpath(path, repo)}")

    for line in broken:
        print(f"BROKEN  {line}")
    print(f"check_md_links: {checked} repo-relative links checked in {len(files)} files")
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main())
